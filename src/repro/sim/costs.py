"""Calibrated cost model: seconds per simulated primitive.

Every timing number the harness reports is derived from these constants
plus the structure of the *actually executed* workload (how many state
accesses ran, how many dependency edges crossed workers, how many bytes
were flushed, ...).  The defaults are calibrated so that the default
experiment configuration lands in the same regime the paper reports
(runtime throughput in the hundreds of thousands of events/s on a
single socket; recovery times of seconds), but only relative shapes —
who wins, where crossovers fall — are claimed to reproduce.

All durations are in seconds; all "per_*" constants are per primitive
occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigError

#: 1 microsecond, the natural unit for in-memory primitives.
US = 1e-6


@dataclass(frozen=True)
class CostModel:
    """Seconds charged per primitive by the virtual-time simulator.

    The constants fall into four groups: transaction execution,
    dependency machinery, logging/tracking, and recovery-specific work.
    ``scaled()`` produces a uniformly faster/slower machine, which the
    scalability bench uses to model per-core frequency differences.
    """

    # --- transaction execution -------------------------------------------
    #: One read or write of a state record (hash probe + copy).
    state_access: float = 1.0 * US
    #: One user-defined function evaluation (the ``f`` in ``W_t(k, f(...))``).
    udf: float = 0.5 * US
    #: Evaluating one abort condition against resolved read values.
    condition_check: float = 0.4 * US
    #: Turning one input event into a state transaction (preprocessing).
    preprocess_event: float = 0.8 * US
    #: Producing one output from transaction results (postprocessing).
    postprocess_event: float = 0.5 * US

    # --- dependency machinery --------------------------------------------
    #: Cross-core handoff: a dependency edge whose endpoints run on
    #: different cores (cache-line transfer + notification).
    sync_handoff: float = 1.2 * US
    #: Inspecting one dependency edge while exploring a task graph.
    explore_dependency: float = 0.8 * US
    #: CPU burned by a consumer to resolve one *cross-worker* dependency
    #: (coherence miss + queue/notification handling).  Intra-worker
    #: dependencies are free — eliminating this cost is what selective
    #: logging and operation restructuring buy.
    remote_fetch: float = 2.0 * US
    #: Inserting one vertex while constructing a task-precedence /
    #: dependency graph.
    construct_node: float = 0.9 * US
    #: Inserting one edge while constructing a dependency graph.
    construct_edge: float = 1.2 * US
    #: Reconstructing one vertex of a dependency graph *from log
    #: records* during recovery (decode + hash probe on cold data —
    #: DistDGCC's dominant recovery cost, §III-B).
    rebuild_node: float = 2.0 * US
    #: Reconstructing one edge of a dependency graph from log records.
    rebuild_edge: float = 3.5 * US
    #: Rolling back / re-dispatching one aborted transaction.
    abort_transaction: float = 8.0 * US

    # --- logging and tracking (runtime overhead) --------------------------
    #: Appending one record to a classic log buffer at runtime (tail
    #: latch + CRC + copy) — paid per committed transaction by WAL/DL/LV.
    log_record_append: float = 2.2 * US
    #: Tracking one dependency at runtime (DL edge record, LV vector merge).
    track_dependency: float = 1.0 * US
    #: Maintaining/checking one LSN-vector entry (Taurus/LV).  Recovery
    #: checks every entry of the global recovery vector per transaction
    #: with synchronized access, hence the relatively high unit cost.
    lsn_vector_entry: float = 1.0 * US
    #: Recording one intermediate result into a MorphStreamR view.
    view_record: float = 2.0 * US
    #: Looking one intermediate result up from a view during recovery.
    view_lookup: float = 0.35 * US
    #: Bulk-loading one entry into the view index during recovery
    #: (cheaper than graph construction: append + hash insert).
    view_index_entry: float = 0.8 * US
    #: Graph-partitioning work per chain vertex (selective logging).
    partition_vertex: float = 0.25 * US
    #: Graph-partitioning work per inter-chain edge (selective logging).
    partition_edge: float = 0.1 * US
    #: Serializing one log/snapshot byte into the write buffer.
    serialize_byte: float = 0.0008 * US

    # --- recovery-specific -----------------------------------------------
    #: Per-element coefficient of the O(n log n) global sort WAL performs
    #: to re-establish a total order over group-committed command logs.
    sort_per_element: float = 2.5 * US
    #: One union-find probe (find + path compression / union) over a
    #: transaction's record access during PACMAN-style static log
    #: analysis.  Cheaper than ``construct_edge``: the probe walks
    #: interned refs already decoded and warm in cache, where DL's graph
    #: rebuild decodes edge records against cold data.
    static_analysis_access: float = 0.3 * US
    #: Passing one shadow operation (decrement a dependency counter).
    shadow_visit: float = 0.45 * US
    #: Switching a worker from one operation chain to another during
    #: shadow-based exploration.
    chain_switch: float = 1.5 * US
    #: Dispatching one task (chain / partition) to a worker queue.
    task_dispatch: float = 1.0 * US

    # --- I/O shaping -------------------------------------------------------
    #: Fraction of runtime log/snapshot I/O hidden by the non-blocking
    #: async path of §VI-C (0 = fully exposed, 1 = fully hidden).
    io_overlap: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.io_overlap <= 1.0:
            raise ConfigError(
                f"io_overlap must be within [0, 1], got {self.io_overlap}"
            )
        for name, value in self.__dict__.items():
            if name != "io_overlap" and value < 0:
                raise ConfigError(f"cost {name} must be >= 0, got {value}")

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every CPU cost multiplied by ``factor``.

        ``io_overlap`` is a ratio, not a duration, so it is preserved.
        """
        if factor <= 0:
            raise ConfigError(f"scale factor must be > 0, got {factor}")
        updates = {
            name: value * factor
            for name, value in self.__dict__.items()
            if name != "io_overlap"
        }
        return replace(self, **updates)


#: The calibration used by all paper-figure benchmarks.
DEFAULT_COSTS = CostModel()
