"""Per-core virtual clocks with bucketed time accounting.

A :class:`Machine` owns ``num_cores`` :class:`Core` objects.  Each core
carries a monotonically increasing virtual clock (seconds) and an
accounting dictionary mapping a *bucket* name (``"execute"``,
``"construct"``, ``"wait"``, ...) to the seconds spent in it.  The paper's
recovery-breakdown figure (Fig. 11) is produced directly from these
buckets.

The model is intentionally simple and fully deterministic:

- ``core.spend(bucket, seconds)`` advances one core's clock.
- ``machine.barrier(bucket)`` aligns every core to the maximum clock,
  charging the idle gap of each core to ``bucket`` (``"wait"`` by
  default) — this is how synchronization/straggler time appears.
- ``machine.elapsed()`` is the makespan so far.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.errors import ConfigError

#: Bucket used for time a core spends blocked on other cores.
WAIT = "wait"


class Core:
    """One simulated CPU core: a clock plus per-bucket accounting."""

    __slots__ = ("core_id", "clock", "buckets")

    def __init__(self, core_id: int):
        self.core_id = core_id
        self.clock = 0.0
        self.buckets: Dict[str, float] = {}

    def spend(self, bucket: str, seconds: float) -> float:
        """Advance this core's clock by ``seconds``, charged to ``bucket``.

        Returns the clock value after the advance.  Negative durations are
        rejected — virtual time never flows backwards.
        """
        if seconds < 0:
            raise ConfigError(
                f"core {self.core_id}: negative duration {seconds!r} for "
                f"bucket {bucket!r}"
            )
        self.clock += seconds
        self.buckets[bucket] = self.buckets.get(bucket, 0.0) + seconds
        return self.clock

    def advance_to(self, target: float, bucket: str = WAIT) -> float:
        """Move the clock forward to ``target`` (no-op if already past).

        The idle gap is charged to ``bucket``.  Returns the new clock.
        """
        gap = target - self.clock
        if gap > 0:
            self.spend(bucket, gap)
        return self.clock

    def spent(self, bucket: str) -> float:
        """Seconds this core has spent in ``bucket`` so far."""
        return self.buckets.get(bucket, 0.0)


class Machine:
    """A bank of virtual cores advancing independently between barriers."""

    def __init__(self, num_cores: int):
        if num_cores < 1:
            raise ConfigError(f"num_cores must be >= 1, got {num_cores}")
        self.cores: List[Core] = [Core(i) for i in range(num_cores)]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def elapsed(self) -> float:
        """Makespan: the furthest-ahead core's clock."""
        return max(core.clock for core in self.cores)

    def barrier(self, bucket: str = WAIT, extra: float = 0.0) -> float:
        """Synchronize all cores at ``max(clock) + extra`` seconds.

        Each lagging core's gap is charged to ``bucket``; the ``extra``
        cost (e.g. a group-commit handshake) is charged to the same bucket
        on every core.  Returns the aligned clock value.
        """
        target = self.elapsed()
        for core in self.cores:
            core.advance_to(target, bucket)
            if extra:
                core.spend(bucket, extra)
        return self.elapsed()

    def advance_all_to(self, target: float, bucket: str = WAIT) -> float:
        """Advance every core's clock to at least ``target`` seconds.

        Cores already past ``target`` are untouched; lagging cores
        charge the idle gap to ``bucket``.  This is the latency-stamping
        primitive of the soak harness: the engine's virtual clock is
        kept aligned with the ingress arrival timeline (waiting for an
        epoch's events to arrive, or sitting through a failure-detection
        + recovery outage), so epoch-commit stamps — and therefore
        end-to-end latencies — read directly off :meth:`elapsed`.
        Returns the new makespan.
        """
        for core in self.cores:
            core.advance_to(target, bucket)
        return self.elapsed()

    def spend_all(self, bucket: str, seconds: float) -> None:
        """Charge ``seconds`` in ``bucket`` on every core simultaneously."""
        for core in self.cores:
            core.spend(bucket, seconds)

    def spend_parallel(self, bucket: str, work_items: Iterable[float]) -> None:
        """Distribute independent work items round-robin across cores.

        ``work_items`` is an iterable of per-item durations.  Items are
        dealt to cores in round-robin order, modelling an embarrassingly
        parallel loop with static scheduling.  No barrier is taken.
        """
        for i, seconds in enumerate(work_items):
            self.cores[i % self.num_cores].spend(bucket, seconds)

    def bucket_totals(self) -> Dict[str, float]:
        """Sum of every bucket across all cores (CPU-seconds)."""
        totals: Dict[str, float] = {}
        for core in self.cores:
            for bucket, seconds in core.buckets.items():
                totals[bucket] = totals.get(bucket, 0.0) + seconds
        return totals

    def bucket_breakdown(self) -> Dict[str, float]:
        """Average per-core seconds for every bucket.

        This is the quantity plotted in the paper's Fig. 11: per-bucket
        contribution to the (wall-clock) recovery time, so the values of
        all buckets sum to approximately ``elapsed()``.
        """
        totals = self.bucket_totals()
        return {b: s / self.num_cores for b, s in totals.items()}

    def reset(self) -> None:
        """Zero all clocks and accounting (reuse between phases)."""
        for core in self.cores:
            core.clock = 0.0
            core.buckets = {}
