"""Virtual-time multicore simulator.

The paper measures wall-clock recovery time on a 36-core Xeon.  A pure
Python reproduction cannot exhibit real multicore parallelism (the GIL
serializes threads), so this package substitutes a *deterministic
virtual-time model*: algorithms run for real, single-threaded, while the
time a parallel machine would have taken is computed with per-worker
virtual clocks and a calibrated cost model (see ``DESIGN.md`` §2).

Public surface:

- :class:`~repro.sim.costs.CostModel` — seconds-per-primitive constants.
- :class:`~repro.sim.clock.Machine` / :class:`~repro.sim.clock.Core` —
  the virtual multicore with per-bucket time accounting.
- :class:`~repro.sim.executor.ParallelExecutor` — list-scheduling
  simulation of a task DAG on the virtual machine.
"""

from repro.sim.clock import Core, Machine
from repro.sim.costs import CostModel
from repro.sim.executor import ParallelExecutor, SimTask

__all__ = ["Core", "Machine", "CostModel", "ParallelExecutor", "SimTask"]
