"""Central crash-point registry: every ``at_point(...)`` site, enumerable.

Crash points are named execution milestones where a
:class:`~repro.storage.faults.FaultInjector` may kill the process
(``FaultSpec(kind="crash_point", point=...)``).  Before this registry
they were stringly typed: a typo in a fault spec or a gate silently
never fired.  Now both ends of the contract are checked —

- ``FaultSpec`` rejects unregistered point names at construction;
- ``FaultInjector.at_point`` rejects unregistered gates at fire time;
- the systematic explorer (:mod:`repro.check`) *enumerates* the
  registry and fails its run when a registered point of the domains it
  drives never fired (coverage accounting), so a gate that rots away —
  e.g. a refactor drops the ``recovery.watermark`` call — turns CI red
  instead of silently shrinking the tested fault space.

Points are grouped by **domain**: ``recovery`` points fire on any disk
during :meth:`~repro.ft.base.FTScheme.recover`; the
``storage.progress-file`` points only exist on a file-backed disk
(inside :class:`~repro.storage.filedisk.FileProgressStore`'s atomic
write window) and are exercised by dedicated tests rather than the
in-memory explorer — the coverage contract is per-domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigError

#: Domain of points fired by FTScheme.recover() on any disk.
DOMAIN_RECOVERY = "recovery"
#: Domain of points inside FileProgressStore's tmp-write/rename window.
DOMAIN_PROGRESS_FILE = "storage.progress-file"


@dataclass(frozen=True)
class CrashPoint:
    """One registered crash gate."""

    name: str
    domain: str
    description: str
    #: schemes whose runs can reach the point (empty = every scheme).
    schemes: Tuple[str, ...] = ()


_REGISTRY: Dict[str, CrashPoint] = {}


def register(point: CrashPoint) -> CrashPoint:
    """Add one point; re-registration must be identical (idempotent)."""
    existing = _REGISTRY.get(point.name)
    if existing is not None and existing != point:
        raise ConfigError(
            f"crash point {point.name!r} already registered with a "
            "different definition"
        )
    _REGISTRY[point.name] = point
    return point


def is_registered(name: str) -> bool:
    return name in _REGISTRY


def get_point(name: str) -> CrashPoint:
    validate_point(name)
    return _REGISTRY[name]


def validate_point(name: str) -> None:
    """Reject a point name nothing will ever fire (checked contract)."""
    if name not in _REGISTRY:
        raise ConfigError(
            f"unregistered crash point {name!r}; known points: "
            f"{sorted(_REGISTRY)}"
        )


def registered_points(
    domain: Optional[str] = None, scheme: Optional[str] = None
) -> Tuple[CrashPoint, ...]:
    """All registered points, optionally filtered by domain and scheme.

    ``scheme`` keeps only points reachable by that scheme's runs
    (points with an empty ``schemes`` tuple apply to every scheme).
    """
    points = sorted(_REGISTRY.values(), key=lambda p: p.name)
    if domain is not None:
        points = [p for p in points if p.domain == domain]
    if scheme is not None:
        points = [p for p in points if not p.schemes or scheme in p.schemes]
    return tuple(points)


# ----------------------------------------------------------------------
# The registered gates.  Adding an ``at_point`` call site elsewhere
# requires registering it here, or the gate raises at fire time.
# ----------------------------------------------------------------------

register(
    CrashPoint(
        "recovery.checkpoint-loaded",
        DOMAIN_RECOVERY,
        "after the checkpoint rung restored a snapshot, before the "
        "initial progress watermark",
    )
)
register(
    CrashPoint(
        "recovery.epoch-replayed",
        DOMAIN_RECOVERY,
        "after one lost epoch was replayed and its outputs delivered",
    )
)
register(
    CrashPoint(
        "recovery.watermark",
        DOMAIN_RECOVERY,
        "after a recovery-progress watermark flush",
    )
)
register(
    CrashPoint(
        "recovery.chain",
        DOMAIN_RECOVERY,
        "after one chain bundle of the in-flight epoch (chain-"
        "structured schemes only)",
        schemes=("MSR",),
    )
)
register(
    CrashPoint(
        "recovery.finalize",
        DOMAIN_RECOVERY,
        "after sealed-epoch reopen and ingress-tail restore, before "
        "the progress slot is cleared",
    )
)
register(
    CrashPoint(
        "progress.tmp-written",
        DOMAIN_PROGRESS_FILE,
        "file-backed progress store: temp sibling written, rename not "
        "yet performed (the published slot is still the old one)",
    )
)
register(
    CrashPoint(
        "progress.replaced",
        DOMAIN_PROGRESS_FILE,
        "file-backed progress store: os.replace done, the new slot is "
        "the published one",
    )
)
