"""Canonical time-accounting bucket names.

Recovery buckets follow the paper's Fig. 11 breakdown; runtime buckets
follow Fig. 12d.  Using one shared vocabulary keeps scheme code and the
report layer in sync.
"""

# --- recovery (Fig. 11) -----------------------------------------------------
#: Reloading states, input events and log records from durable storage.
RELOAD = "reload"
#: Performing state accesses and user-defined computations.
EXECUTE = "execute"
#: Identifying dependencies / constructing auxiliary structures.
CONSTRUCT = "construct"
#: Handling state transaction aborts.
ABORT = "abort"
#: Exploring available operations to process (dependency checks).
EXPLORE = "explore"
#: Synchronization, including waiting due to load imbalance.
WAIT = "wait"
#: Detecting a dead recovery worker and re-dispatching its chains.
REASSIGN = "reassign"

RECOVERY_BUCKETS = (RELOAD, EXECUTE, CONSTRUCT, ABORT, EXPLORE, WAIT, REASSIGN)

# --- runtime (Fig. 12d) -----------------------------------------------------
#: Serializing and persisting log records / snapshots / events.
IO = "io"
#: Tracking dependencies and constructing log records.
TRACK = "track"
#: Synchronization for consistent snapshots and log commitment.
SYNC = "sync"

RUNTIME_OVERHEAD_BUCKETS = (IO, TRACK, SYNC)
RUNTIME_BUCKETS = (EXECUTE, CONSTRUCT, EXPLORE, WAIT) + RUNTIME_OVERHEAD_BUCKETS
