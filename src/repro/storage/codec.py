"""Tagged binary codec for everything the system persists.

A compact, dependency-free, deterministic serialization format.  It
exists for two reasons:

1. *Honest durability.*  Recovery paths decode the same bytes a real
   engine would read back from disk; nothing recovers from live Python
   references.
2. *Honest I/O accounting.*  The storage device model charges virtual
   time per byte, so log-record sizes (the quantity DistDGCC inflates
   and MorphStreamR's selective logging shrinks) must be real.

Format: one tag byte followed by a payload.  Integers are
zig-zag + varint encoded, floats are IEEE-754 doubles, strings are
UTF-8 with a varint length prefix, containers are a varint count
followed by the elements.  Dict keys are sorted during encoding so the
output is deterministic regardless of insertion order.

Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
``bytes``, ``tuple``, ``list``, ``dict`` (tuples decode as tuples and
lists as lists — the distinction is preserved).
"""

from __future__ import annotations

import struct
from typing import Any, List, Tuple

from repro.errors import StorageError

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_TUPLE = 0x07
_TAG_LIST = 0x08
_TAG_DICT = 0x09

_FLOAT = struct.Struct(">d")


def _write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> Tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise StorageError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _wide_zigzag(value: int) -> int:
    # Zig-zag mapping for arbitrary-precision ints (Python ints are unbounded).
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def _unzigzag(value: int) -> int:
    return value >> 1 if not value & 1 else -((value + 1) >> 1)


def _encode_into(out: bytearray, obj: Any) -> None:
    if obj is None:
        out.append(_TAG_NONE)
    elif obj is True:
        out.append(_TAG_TRUE)
    elif obj is False:
        out.append(_TAG_FALSE)
    elif isinstance(obj, int):
        out.append(_TAG_INT)
        _write_varint(out, _wide_zigzag(obj))
    elif isinstance(obj, float):
        out.append(_TAG_FLOAT)
        out.extend(_FLOAT.pack(obj))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        out.append(_TAG_STR)
        _write_varint(out, len(raw))
        out.extend(raw)
    elif isinstance(obj, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        _write_varint(out, len(obj))
        out.extend(obj)
    elif isinstance(obj, tuple):
        out.append(_TAG_TUPLE)
        _write_varint(out, len(obj))
        for item in obj:
            _encode_into(out, item)
    elif isinstance(obj, list):
        out.append(_TAG_LIST)
        _write_varint(out, len(obj))
        for item in obj:
            _encode_into(out, item)
    elif isinstance(obj, dict):
        out.append(_TAG_DICT)
        _write_varint(out, len(obj))
        try:
            items = sorted(obj.items())
        except TypeError:
            # Mixed-type keys cannot be sorted; fall back to a
            # deterministic sort on the encoded key bytes.
            items = sorted(obj.items(), key=lambda kv: encode(kv[0]))
        for key, value in items:
            _encode_into(out, key)
            _encode_into(out, value)
    else:
        raise StorageError(f"cannot serialize object of type {type(obj).__name__}")


def encode(obj: Any) -> bytes:
    """Serialize ``obj`` into the tagged binary format."""
    out = bytearray()
    _encode_into(out, obj)
    return bytes(out)


def _decode_from(data: bytes, pos: int) -> Tuple[Any, int]:
    if pos >= len(data):
        raise StorageError("truncated record: missing tag")
    tag = data[pos]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag == _TAG_INT:
        raw, pos = _read_varint(data, pos)
        return _unzigzag(raw), pos
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise StorageError("truncated float")
        return _FLOAT.unpack_from(data, pos)[0], pos + 8
    if tag == _TAG_STR:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise StorageError("truncated string")
        return data[pos:end].decode("utf-8"), end
    if tag == _TAG_BYTES:
        length, pos = _read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise StorageError("truncated bytes")
        return data[pos:end], end
    if tag in (_TAG_TUPLE, _TAG_LIST):
        count, pos = _read_varint(data, pos)
        items: List[Any] = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return (tuple(items) if tag == _TAG_TUPLE else items), pos
    if tag == _TAG_DICT:
        count, pos = _read_varint(data, pos)
        result = {}
        for _ in range(count):
            key, pos = _decode_from(data, pos)
            value, pos = _decode_from(data, pos)
            result[key] = value
        return result, pos
    raise StorageError(f"unknown tag byte 0x{tag:02x}")


def decode(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`encode`.

    Raises :class:`~repro.errors.StorageError` on truncated or trailing
    bytes — a partial flush must never decode silently.
    """
    obj, pos = _decode_from(data, 0)
    if pos != len(data):
        raise StorageError(f"{len(data) - pos} trailing bytes after record")
    return obj
