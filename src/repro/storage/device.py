"""Performance model of the durable storage device.

Parameterized to the paper's testbed SSD — a 480 GB Intel Optane drive
with 2 GB/s write bandwidth and 146k IOPS — and used by every store to
convert byte counts into virtual seconds.  The model is the standard
``latency + size/bandwidth`` affine cost with an IOPS floor:

    write(bytes) = max(latency + bytes / write_bw, 1 / iops)

Reads use a separate (higher) bandwidth, matching Optane's asymmetry.
The device also keeps cumulative counters so experiments can report
bytes written per scheme (the log-size comparison behind Fig. 12b/c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError


@dataclass
class DeviceStats:
    """Cumulative traffic counters for one device."""

    bytes_written: int = 0
    bytes_read: int = 0
    write_ops: int = 0
    read_ops: int = 0
    write_seconds: float = 0.0
    read_seconds: float = 0.0


@dataclass
class StorageDevice:
    """Affine latency/bandwidth/IOPS model of an SSD.

    Defaults match the paper's Intel Optane drive.  ``write_seconds`` /
    ``read_seconds`` return the virtual time one flush/fetch takes; the
    caller decides which core(s) to charge it to and whether the async
    I/O path hides part of it.
    """

    write_bandwidth: float = 2.0e9  # bytes/second
    read_bandwidth: float = 2.5e9  # bytes/second
    iops: float = 146_000.0
    latency: float = 20e-6  # seconds, per operation setup
    stats: DeviceStats = field(default_factory=DeviceStats)

    def __post_init__(self) -> None:
        for name in ("write_bandwidth", "read_bandwidth", "iops"):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be > 0")
        if self.latency < 0:
            raise ConfigError("latency must be >= 0")

    @property
    def _min_op_time(self) -> float:
        return 1.0 / self.iops

    def write(self, num_bytes: int) -> float:
        """Account one flush of ``num_bytes`` and return its duration."""
        if num_bytes < 0:
            raise ConfigError("cannot write a negative byte count")
        seconds = max(
            self.latency + num_bytes / self.write_bandwidth, self._min_op_time
        )
        self.stats.bytes_written += num_bytes
        self.stats.write_ops += 1
        self.stats.write_seconds += seconds
        return seconds

    def read(self, num_bytes: int) -> float:
        """Account one fetch of ``num_bytes`` and return its duration."""
        if num_bytes < 0:
            raise ConfigError("cannot read a negative byte count")
        seconds = max(
            self.latency + num_bytes / self.read_bandwidth, self._min_op_time
        )
        self.stats.bytes_read += num_bytes
        self.stats.read_ops += 1
        self.stats.read_seconds += seconds
        return seconds

    def reset_stats(self) -> None:
        """Zero the counters (e.g. between runtime and recovery phases)."""
        self.stats = DeviceStats()
