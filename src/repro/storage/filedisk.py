"""File-backed durable stores: crash-survival across real processes.

The in-memory :class:`~repro.storage.stores.Disk` survives a *simulated*
crash.  This module makes durability literal: every durable mutation is
written through to a real file under a root directory, and a brand-new
process can reopen that directory and recover.  Virtual-time accounting
is unchanged (the device model still prices every operation); the files
are the proof that nothing recovers from live memory.

Layout::

    root/
      events/arrivals_<n>.bin      one file per ingress append
      events/boundaries.log        one line per sealed epoch: "<id> <count>"
      snapshots/<id>.full          framed full snapshot
      snapshots/<id>.delta.<base>  framed delta over <base>
      logs/<stream>/<id>.bin       framed group-committed segment

Writes happen before the in-memory update returns, mirroring a
write-ahead discipline; deletes (GC) remove files.  ``open`` rebuilds
the in-memory state purely from the files.

Partial flushes are representable: a file may legitimately hold a torn
(prefix-only) or bit-flipped segment after a crash or injected fault.
Reopening performs an ARIES-style tail scan over each log stream — the
*newest* segment(s) failing frame verification are truncated away (a
torn tail is the expected debris of a crash mid-flush) and recorded in
``truncated_tails``; unreadable segments in the middle of retained
history are kept for the recovery fallback ladder to handle loudly.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Any, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.codec import decode, encode
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector
from repro.storage.integrity import verify
from repro.storage.stores import (
    Disk,
    EventStore,
    LogStore,
    ProgressStore,
    SnapshotStore,
)


class FileEventStore(EventStore):
    """Event store writing arrivals and epoch boundaries through to disk."""

    def __init__(
        self,
        device: StorageDevice,
        root: Path,
        faults: Optional[FaultInjector] = None,
    ):
        super().__init__(device, faults)
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        self._arrival_index = 0
        self._load()

    def _boundaries_path(self) -> Path:
        return self._root / "boundaries.log"

    def _load(self) -> None:
        arrivals = sorted(
            self._root.glob("arrivals_*.bin"),
            key=lambda p: int(p.stem.split("_")[1]),
        )
        stream: List[Any] = []
        for path in arrivals:
            stream.extend(decode(path.read_bytes()))
            self._arrival_index = int(path.stem.split("_")[1]) + 1
        cursor = 0
        if self._boundaries_path().exists():
            for line in self._boundaries_path().read_text().splitlines():
                epoch_id, count = (int(part) for part in line.split())
                self._epochs[epoch_id] = stream[cursor : cursor + count]
                cursor += count
        self._pending = stream[cursor:]
        # GC'd epochs leave holes: boundaries of reclaimed epochs were
        # rewritten at truncate time, so the replay above is exact.

    def append_events(self, events: List[Any]) -> float:
        path = self._root / f"arrivals_{self._arrival_index}.bin"
        path.write_bytes(encode(list(events)))
        self._arrival_index += 1
        return super().append_events(events)

    def seal_epoch(self, epoch_id: int, count: int) -> float:
        seconds = super().seal_epoch(epoch_id, count)
        with self._boundaries_path().open("a") as handle:
            handle.write(f"{epoch_id} {count}\n")
        return seconds

    def reopen_epoch(self, epoch_id: int) -> int:
        count = super().reopen_epoch(epoch_id)
        # The un-seal must itself be durable: rewrite the boundaries so
        # a second crash does not resurrect the half-processed epoch.
        self._rewrite_files()
        return count

    def truncate_before(self, epoch_id: int) -> int:
        freed = super().truncate_before(epoch_id)
        self._rewrite_files()
        return freed

    def _rewrite_files(self) -> None:
        """Compact: one arrivals file of surviving events + boundaries."""
        for path in self._root.glob("arrivals_*.bin"):
            path.unlink()
        surviving: List[Any] = []
        lines = []
        for epoch_id in sorted(self._epochs):
            payloads = self._epochs[epoch_id]
            surviving.extend(payloads)
            lines.append(f"{epoch_id} {len(payloads)}")
        surviving.extend(self._pending)
        (self._root / "arrivals_0.bin").write_bytes(encode(surviving))
        self._arrival_index = 1
        self._boundaries_path().write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )


class FileSnapshotStore(SnapshotStore):
    """Snapshot store persisting framed blobs as files."""

    def __init__(
        self,
        device: StorageDevice,
        root: Path,
        faults: Optional[FaultInjector] = None,
    ):
        super().__init__(device, faults)
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        for path in self._root.iterdir():
            parts = path.name.split(".")
            if parts[-1] == "full" or parts[-2:-1] == ["full"]:
                epoch_id = int(parts[0])
                self._snapshots[epoch_id] = (self._FULL, path.read_bytes(), None)
            elif "delta" in parts:
                epoch_id = int(parts[0])
                base = int(parts[-1])
                self._snapshots[epoch_id] = (
                    self._DELTA,
                    path.read_bytes(),
                    base,
                )

    def put(self, epoch_id: int, state: Any) -> float:
        seconds = super().put(epoch_id, state)
        entry = self._snapshots.get(epoch_id)
        if entry is not None:  # a dropped flush never reaches the medium
            (self._root / f"{epoch_id}.full").write_bytes(entry[1])
        return seconds

    def put_delta(self, epoch_id: int, delta: Any, base_epoch: int) -> float:
        seconds = super().put_delta(epoch_id, delta, base_epoch)
        entry = self._snapshots.get(epoch_id)
        if entry is not None:
            (self._root / f"{epoch_id}.delta.{base_epoch}").write_bytes(
                entry[1]
            )
        return seconds

    def discard_from(self, epoch_id: int) -> int:
        before = set(self._snapshots)
        freed = super().discard_from(epoch_id)
        for stale in before - set(self._snapshots):
            for path in self._root.glob(f"{stale}.*"):
                path.unlink()
        return freed

    def truncate_before(self, epoch_id: int) -> int:
        before = set(self._snapshots)
        freed = super().truncate_before(epoch_id)
        for stale in before - set(self._snapshots):
            for path in self._root.glob(f"{stale}.*"):
                path.unlink()
        return freed


class FileLogStore(LogStore):
    """Log store persisting framed segments as files per stream."""

    def __init__(
        self,
        device: StorageDevice,
        root: Path,
        faults: Optional[FaultInjector] = None,
    ):
        super().__init__(device, faults)
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        #: (stream, epoch) pairs whose segments were truncated away by
        #: the reopen tail scan (torn flushes of the dying process).
        self.truncated_tails: List[Tuple[str, int]] = []
        for stream_dir in self._root.iterdir():
            if not stream_dir.is_dir():
                continue
            for path in stream_dir.glob("*.bin"):
                epoch_id = int(path.stem)
                self._segments[(stream_dir.name, epoch_id)] = path.read_bytes()
        self._scan_torn_tails()

    def _scan_torn_tails(self) -> None:
        """ARIES-style tail scan: truncate trailing unreadable segments.

        The newest segment of a stream may be a torn flush from the
        crash that killed the previous process; such tails are dropped
        (file and all) so recovery falls back cleanly.  An unreadable
        segment *behind* a readable one is genuine corruption and is
        kept — the fallback ladder must confront it loudly at read time.
        """
        streams = {stream for stream, _e in self._segments}
        for stream in streams:
            epochs = sorted(
                e for s, e in self._segments if s == stream
            )
            for epoch_id in reversed(epochs):
                blob = self._segments[(stream, epoch_id)]
                try:
                    verify(blob, f"log stream {stream!r} epoch {epoch_id}")
                    break  # first readable segment ends the tail scan
                except StorageError:
                    del self._segments[(stream, epoch_id)]
                    path = self._root / stream / f"{epoch_id}.bin"
                    if path.exists():
                        path.unlink()
                    self.truncated_tails.append((stream, epoch_id))

    def commit_epoch(self, stream: str, epoch_id: int, records: Any) -> float:
        seconds = super().commit_epoch(stream, epoch_id, records)
        blob = self._segments.get((stream, epoch_id))
        if blob is not None:  # a dropped flush never reaches the medium
            stream_dir = self._root / stream
            stream_dir.mkdir(parents=True, exist_ok=True)
            (stream_dir / f"{epoch_id}.bin").write_bytes(blob)
        return seconds

    def quarantine(self, stream: str, epoch_id: int) -> int:
        freed = super().quarantine(stream, epoch_id)
        path = self._root / stream / f"{epoch_id}.bin"
        if path.exists():
            path.unlink()
        return freed

    def discard_from(self, epoch_id: int) -> int:
        before = set(self._segments)
        freed = super().discard_from(epoch_id)
        for stream, stale in before - set(self._segments):
            path = self._root / stream / f"{stale}.bin"
            if path.exists():
                path.unlink()
        return freed

    def truncate_before(self, epoch_id: int) -> int:
        before = set(self._segments)
        freed = super().truncate_before(epoch_id)
        for stream, stale in before - set(self._segments):
            path = self._root / stream / f"{stale}.bin"
            if path.exists():
                path.unlink()
        return freed


class FileProgressStore(ProgressStore):
    """Progress store persisting its two slots as files under ``root``.

    ``progress.bin`` holds the watermark, ``chain_mark.bin`` the
    in-flight epoch's chain counter.  A new process reopening the root
    finds the watermark of a recovery that died mid-flight and resumes.

    Slot writes are atomic (write to a temp sibling, then
    ``os.replace``): a plain in-place overwrite can be interrupted
    between truncate and write, leaving a zero-length slot that fails
    framing verification and silently degrades the next recovery to a
    fresh start.  With the rename, a reader only ever sees the old slot
    or the new one, never a torn intermediate.
    """

    def __init__(
        self,
        device: StorageDevice,
        root: Path,
        faults: Optional[FaultInjector] = None,
    ):
        super().__init__(device, faults)
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        # Debris from a crash between temp-write and rename: the rename
        # never happened, so the published slot (if any) is still the
        # previous consistent one and the temp file is garbage.
        for stale in self._root.glob("*.tmp"):
            stale.unlink()
        slot_path = self._root / "progress.bin"
        if slot_path.exists():
            self._slot = slot_path.read_bytes()
        mark_path = self._root / "chain_mark.bin"
        if mark_path.exists():
            self._chain_mark = mark_path.read_bytes()

    def _atomic_write(self, name: str, data: bytes) -> None:
        path = self._root / name
        tmp = self._root / (name + ".tmp")
        tmp.write_bytes(data)
        # Crash gates bracketing the publish: a registered fault may
        # kill the process with the temp sibling on disk but the rename
        # not yet performed ("progress.tmp-written" — reopen must sweep
        # the debris and still see the previous consistent slot), or
        # right after the rename ("progress.replaced" — the new slot is
        # the one a reopen must serve).  Either way, no torn watermark.
        if self._faults is not None:
            self._faults.at_point("progress.tmp-written")
        os.replace(tmp, path)
        if self._faults is not None:
            self._faults.at_point("progress.replaced")

    def save(self, record: Any, charge_bytes: Optional[int] = None) -> float:
        seconds = super().save(record, charge_bytes)
        if self._slot is not None:
            self._atomic_write("progress.bin", self._slot)
        mark_path = self._root / "chain_mark.bin"
        if mark_path.exists():
            mark_path.unlink()
        return seconds

    def clear(self) -> float:
        seconds = super().clear()
        for name in ("progress.bin", "chain_mark.bin"):
            path = self._root / name
            if path.exists():
                path.unlink()
        return seconds

    def save_chain_mark(self, mark: Any) -> float:
        seconds = super().save_chain_mark(mark)
        if self._chain_mark is not None:
            self._atomic_write("chain_mark.bin", self._chain_mark)
        return seconds


class FileBackedDisk(Disk):
    """A :class:`Disk` whose three stores write through to ``root``.

    Opening the same root in another process reconstructs the durable
    state exactly — the honest-durability mode used by the
    process-restart example and its tests.
    """

    def __init__(
        self,
        root: Path,
        device: Optional[StorageDevice] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.device = device or StorageDevice()
        self.faults = faults
        root = Path(root)
        self.root = root
        self.events = FileEventStore(self.device, root / "events", faults)
        self.snapshots = FileSnapshotStore(
            self.device, root / "snapshots", faults
        )
        self.logs = FileLogStore(self.device, root / "logs", faults)
        self.progress = FileProgressStore(
            self.device, root / "progress", faults
        )

    def last_sealed_epoch(self) -> Optional[int]:
        """The newest epoch whose events were sealed (None if none)."""
        return self.events.last_sealed_epoch()
