"""Segment integrity: CRC32-framed durable blobs.

A recovery path must never decode a torn or bit-flipped flush silently:
every blob a store retains is framed with a CRC32 of its payload *and*
the payload length, and reads verify the frame before decoding.  The
length field lets :func:`verify` tell a torn flush (the frame is a
prefix of what was written — survivable by truncating to the last
consistent prefix and degrading to a coarser recovery mechanism) apart
from in-place corruption (checksum mismatch over a complete frame —
unsurvivable without a fallback source):

- a short or length-inconsistent frame raises
  :class:`~repro.errors.TornSegmentError`;
- a complete frame with a checksum mismatch raises
  :class:`~repro.errors.CorruptSegmentError`.

Callers pass ``context`` (which store, stream and segment the frame
belongs to) so a multi-stream recovery failure names the segment that
broke instead of only the checksum pair.
"""

from __future__ import annotations

import struct
from zlib import crc32

from repro.errors import CorruptSegmentError, TornSegmentError

#: Frame header: CRC32 of the payload, then the payload length.
_HEADER = struct.Struct(">II")


def protect(payload: bytes) -> bytes:
    """Frame ``payload`` with its CRC32 checksum and length."""
    return _HEADER.pack(crc32(payload), len(payload)) + payload


def verify(framed: bytes, context: str = "") -> bytes:
    """Check the frame and return the payload.

    Raises :class:`TornSegmentError` when the frame is a prefix of what
    was written (truncated header or payload shorter than the recorded
    length) and :class:`CorruptSegmentError` on a checksum mismatch or
    trailing garbage.  ``context`` names the segment in the message.
    """
    where = f" in {context}" if context else ""
    if len(framed) < _HEADER.size:
        raise TornSegmentError(
            f"segment{where} too short to carry a checksum frame "
            f"({len(framed)} of {_HEADER.size} header bytes present)"
        )
    expected, length = _HEADER.unpack_from(framed)
    payload = framed[_HEADER.size :]
    if len(payload) < length:
        raise TornSegmentError(
            f"torn segment{where}: {len(payload)} of {length} payload "
            "bytes present — flush did not complete"
        )
    if len(payload) > length:
        raise CorruptSegmentError(
            f"segment{where} carries {len(payload) - length} trailing "
            "bytes beyond its recorded length — refusing to recover "
            "from corrupt data"
        )
    actual = crc32(payload)
    if actual != expected:
        raise CorruptSegmentError(
            f"segment{where} checksum mismatch: stored 0x{expected:08x}, "
            f"computed 0x{actual:08x} — refusing to recover from "
            "corrupt data"
        )
    return payload
