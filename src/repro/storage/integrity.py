"""Segment integrity: CRC32-framed durable blobs.

A recovery path must never decode a torn or bit-flipped flush silently:
every blob a store retains is framed with a CRC32 of its payload, and
reads verify the frame before decoding.  A mismatch raises
:class:`~repro.errors.StorageError` — recovery fails loudly instead of
restoring corrupt state.
"""

from __future__ import annotations

import struct
from zlib import crc32

from repro.errors import StorageError

_HEADER = struct.Struct(">I")


def protect(payload: bytes) -> bytes:
    """Frame ``payload`` with its CRC32 checksum."""
    return _HEADER.pack(crc32(payload)) + payload


def verify(framed: bytes) -> bytes:
    """Check the frame and return the payload.

    Raises :class:`StorageError` on truncation or checksum mismatch.
    """
    if len(framed) < _HEADER.size:
        raise StorageError("segment too short to carry a checksum frame")
    (expected,) = _HEADER.unpack_from(framed)
    payload = framed[_HEADER.size :]
    actual = crc32(payload)
    if actual != expected:
        raise StorageError(
            f"segment checksum mismatch: stored 0x{expected:08x}, "
            f"computed 0x{actual:08x} — refusing to recover from "
            "corrupt data"
        )
    return payload
