"""Crash-surviving stores layered on the codec and the device model.

Three stores mirror what the paper persists (§VI-C):

- :class:`EventStore` — every batch of input events, appended by the
  spout before processing (step ① of Fig. 10), enabling replay from the
  failure point.
- :class:`SnapshotStore` — periodic state snapshots (global checkpoints).
- :class:`LogStore` — scheme-specific log records (WAL commands, DL
  dependency records, LV vectors, MorphStreamR views), group-committed
  per epoch.

All payloads pass through :mod:`repro.storage.codec`; a store holds only
bytes, and readers decode.  A simulated crash destroys every in-memory
component *except* these stores.  Each mutating/reading call returns the
virtual seconds the device charged so callers can bill a core.

Every store optionally routes its flushes and fetches through a
:class:`~repro.storage.faults.FaultInjector` (the chaos layer): a flush
may land torn, bit-flipped or not at all, and a fetch may fail with an
injected EIO.  Stores never hide the damage — framed segments fail
:func:`~repro.storage.integrity.verify` at read time with the stream
and segment named, and the recovery fallback ladder decides what rung
to degrade to.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import MissingSegmentError, StorageError
from repro.storage.codec import decode, encode
from repro.storage.device import StorageDevice
from repro.storage.faults import FaultInjector
from repro.storage.integrity import protect, verify


class EventStore:
    """Durable input-event log: arrival-order ingress + epoch sealing.

    The spout appends events the moment they arrive (§VI-C step ①), so
    a crash never loses input — not even events still waiting for the
    punctuation that would form their epoch.  When an epoch forms, its
    events are *sealed*: a tiny boundary record marks which pending
    events belong to it (no payload rewrite).

    Recovery reads sealed epochs by id and can also fetch the pending
    tail (arrived but never processed) to resume exactly where the
    stream stopped.  A mid-epoch crash leaves its epoch sealed but never
    processed; :meth:`reopen_epoch` un-seals it so the events re-enter
    the pending tail and are reprocessed like fresh input.
    """

    def __init__(
        self, device: StorageDevice, faults: Optional[FaultInjector] = None
    ):
        self._device = device
        self._faults = faults
        #: sealed epoch -> encoded event payloads, in arrival order.
        self._epochs: Dict[int, List[Any]] = {}
        #: arrived but not yet sealed into an epoch.
        self._pending: List[Any] = []

    def append_events(self, events: List[Any]) -> float:
        """Ingress append: persist arriving events; returns I/O seconds."""
        blob = encode(list(events))
        self._pending.extend(events)
        return self._device.write(len(blob))

    def seal_epoch(self, epoch_id: int, count: int) -> float:
        """Mark the next ``count`` pending events as epoch ``epoch_id``.

        Writes only a boundary record; payloads were already durable at
        arrival.  Returns I/O seconds.
        """
        if epoch_id in self._epochs:
            raise StorageError(f"epoch {epoch_id} already sealed")
        if count > len(self._pending):
            raise StorageError(
                f"cannot seal {count} events; only {len(self._pending)} pending"
            )
        self._epochs[epoch_id] = self._pending[:count]
        self._pending = self._pending[count:]
        boundary = encode((epoch_id, count))
        return self._device.write(len(boundary))

    def reopen_epoch(self, epoch_id: int) -> int:
        """Un-seal the *newest* sealed epoch back into the pending tail.

        Used after a mid-epoch crash: the dying process sealed the
        epoch's boundary but never finished processing it, so recovery
        returns its events to the ingress buffer for reprocessing.
        Only the tail epoch may be reopened (older epochs committed).
        Returns the number of events returned to the buffer.
        """
        payloads = self._epochs.get(epoch_id)
        if payloads is None:
            raise MissingSegmentError(f"no events sealed for epoch {epoch_id}")
        if epoch_id != max(self._epochs):
            raise StorageError(
                f"cannot reopen epoch {epoch_id}: only the newest sealed "
                "epoch may be returned to the ingress tail"
            )
        del self._epochs[epoch_id]
        self._pending = list(payloads) + self._pending
        return len(payloads)

    def count_epoch(self, epoch_id: int) -> int:
        """Number of events sealed into one epoch (boundary metadata —
        no payload read is charged)."""
        try:
            return len(self._epochs[epoch_id])
        except KeyError:
            raise MissingSegmentError(
                f"no events sealed for epoch {epoch_id}"
            ) from None

    def read_epochs(self, first_epoch: int, last_epoch: int) -> Tuple[List[Any], float]:
        """Read back events of epochs ``first..last`` inclusive.

        Returns ``(events, io_seconds)``.  Missing epochs raise
        :class:`MissingSegmentError` — events are persisted before
        processing, so a gap means they were garbage-collected (or the
        store was misused) and no coarser replay source exists.
        """
        events: List[Any] = []
        seconds = 0.0
        for epoch_id in range(first_epoch, last_epoch + 1):
            payloads = self._epochs.get(epoch_id)
            if payloads is None:
                raise MissingSegmentError(
                    f"no events sealed for epoch {epoch_id}"
                )
            if self._faults is not None:
                self._faults.on_read("events", f"event epoch {epoch_id}")
            seconds += self._device.read(len(encode(payloads)))
            events.extend(payloads)
        return events, seconds

    def read_pending(self) -> Tuple[List[Any], float]:
        """Fetch the unsealed ingress tail; returns (events, io_seconds)."""
        blob = encode(self._pending)
        seconds = self._device.read(len(blob)) if self._pending else 0.0
        return list(self._pending), seconds

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def last_sealed_epoch(self):
        """Newest sealed epoch id, or ``None`` before the first seal."""
        return max(self._epochs) if self._epochs else None

    def truncate_before(self, epoch_id: int) -> int:
        """Garbage-collect sealed epochs older than ``epoch_id``.

        The pending tail is never reclaimed.  Returns bytes freed.
        """
        stale = [e for e in self._epochs if e < epoch_id]
        freed = 0
        for e in stale:
            freed += len(encode(self._epochs.pop(e)))
        return freed

    @property
    def bytes_stored(self) -> int:
        sealed = sum(len(encode(p)) for p in self._epochs.values())
        pending = len(encode(self._pending)) if self._pending else 0
        return sealed + pending


class SnapshotStore:
    """Durable store of global state checkpoints keyed by epoch.

    Two kinds of checkpoints can be persisted:

    - **full** snapshots carry every table;
    - **delta** snapshots carry only records written since the previous
      checkpoint, chained to a base epoch.  Loading a delta epoch walks
      the chain back to its full anchor and reapplies deltas in order —
      the classic incremental-checkpointing trade: less runtime I/O for
      a longer recovery reload.
    """

    _FULL = "full"
    _DELTA = "delta"

    def __init__(
        self, device: StorageDevice, faults: Optional[FaultInjector] = None
    ):
        self._device = device
        self._faults = faults
        #: epoch -> (kind, framed blob, base epoch or None).
        self._snapshots: Dict[int, Tuple[str, bytes, Optional[int]]] = {}

    def _write(self, epoch_id: int, entry: Tuple[str, bytes, Optional[int]]) -> float:
        kind, blob, base = entry
        if self._faults is not None:
            landed = self._faults.on_write(
                "snapshot", f"{kind} snapshot epoch {epoch_id}", blob
            )
            if landed is None:  # dropped flush: nothing reaches the medium
                return self._device.write(len(blob))
            entry = (kind, landed, base)
        self._snapshots[epoch_id] = entry
        return self._device.write(len(blob))

    def put(self, epoch_id: int, state: Any) -> float:
        """Persist a full snapshot taken at the end of ``epoch_id``."""
        blob = protect(encode(state))
        return self._write(epoch_id, (self._FULL, blob, None))

    def put_delta(self, epoch_id: int, delta: Any, base_epoch: int) -> float:
        """Persist a delta over the checkpoint at ``base_epoch``.

        ``delta`` is a (table -> {key: value}) mapping of records
        written since ``base_epoch``'s checkpoint.
        """
        if base_epoch not in self._snapshots:
            raise StorageError(
                f"delta base epoch {base_epoch} has no checkpoint"
            )
        if epoch_id <= base_epoch:
            raise StorageError("delta must come after its base")
        blob = protect(encode(delta))
        return self._write(epoch_id, (self._DELTA, blob, base_epoch))

    def latest_epoch(self) -> Optional[int]:
        """Epoch of the most recent snapshot, or ``None`` if none exists."""
        return max(self._snapshots) if self._snapshots else None

    def epochs_desc(self) -> List[int]:
        """Every checkpointed epoch, newest first (the fallback ladder's
        candidate order when the latest checkpoint is unreadable)."""
        return sorted(self._snapshots, reverse=True)

    def is_delta(self, epoch_id: int) -> bool:
        entry = self._snapshots.get(epoch_id)
        return entry is not None and entry[0] == self._DELTA

    def chain_base(self, epoch_id: int) -> int:
        """The full-snapshot anchor of the chain ending at ``epoch_id``."""
        entry = self._snapshots.get(epoch_id)
        if entry is None:
            raise MissingSegmentError(f"no snapshot for epoch {epoch_id}")
        while entry[0] == self._DELTA:
            epoch_id = entry[2]
            entry = self._snapshots.get(epoch_id)
            if entry is None:
                raise MissingSegmentError(
                    f"broken delta chain: base epoch {epoch_id} missing"
                )
        return epoch_id

    def load(self, epoch_id: int) -> Tuple[Any, float]:
        """Reconstruct the state checkpointed at ``epoch_id``.

        Full snapshots decode directly; delta snapshots walk back to
        their full anchor and reapply each delta, charging I/O for every
        segment touched.  Returns ``(state, io_seconds)``.
        """
        chain: List[Tuple[str, bytes, int]] = []
        cursor: Optional[int] = epoch_id
        while cursor is not None:
            entry = self._snapshots.get(cursor)
            if entry is None:
                raise MissingSegmentError(f"no snapshot for epoch {cursor}")
            kind, blob, base = entry
            chain.append((kind, blob, cursor))
            if kind == self._FULL:
                break
            cursor = base
        else:  # pragma: no cover - loop always breaks or raises
            raise StorageError("unreachable")

        seconds = 0.0
        state: Any = None
        for kind, blob, seg_epoch in reversed(chain):
            context = f"{kind} snapshot epoch {seg_epoch}"
            if self._faults is not None:
                self._faults.on_read("snapshot", context)
            seconds += self._device.read(len(blob))
            payload = decode(verify(blob, context))
            if kind == self._FULL:
                state = payload
            else:
                for table, records in payload.items():
                    state.setdefault(table, {}).update(records)
        return state, seconds

    def discard_from(self, epoch_id: int) -> int:
        """Drop checkpoints at or after ``epoch_id`` (mid-epoch crash
        leftovers: a torn snapshot of an epoch that never committed).

        Deltas only chain backwards, so discarding a suffix never breaks
        a surviving chain.  Returns bytes dropped.
        """
        doomed = [e for e in self._snapshots if e >= epoch_id]
        freed = 0
        for e in doomed:
            freed += len(self._snapshots.pop(e)[1])
        return freed

    def truncate_before(self, epoch_id: int) -> int:
        """Reclaim checkpoints older than ``epoch_id``.

        Never breaks a delta chain: epochs that anchor a surviving delta
        are kept even if older than the cutoff.
        """
        needed = set()
        for epoch in self._snapshots:
            if epoch >= epoch_id:
                needed.add(self.chain_base(epoch))
                cursor = epoch
                while self._snapshots[cursor][0] == self._DELTA:
                    cursor = self._snapshots[cursor][2]
                    needed.add(cursor)
        stale = [
            e for e in self._snapshots if e < epoch_id and e not in needed
        ]
        freed = 0
        for e in stale:
            freed += len(self._snapshots.pop(e)[1])
        return freed

    @property
    def bytes_stored(self) -> int:
        return sum(len(blob) for _k, blob, _b in self._snapshots.values())


class LogStore:
    """Durable, epoch-segmented log of scheme-specific records.

    A scheme may keep several named streams (e.g. MorphStreamR's
    ``abort_view`` and ``parametric_view``); each ``(stream, epoch)``
    pair is one group-committed segment.
    """

    def __init__(
        self, device: StorageDevice, faults: Optional[FaultInjector] = None
    ):
        self._device = device
        self._faults = faults
        self._segments: Dict[Tuple[str, int], bytes] = {}

    def commit_epoch(self, stream: str, epoch_id: int, records: Any) -> float:
        """Group-commit ``records`` for ``epoch_id``; returns I/O seconds."""
        key = (stream, epoch_id)
        if key in self._segments:
            raise StorageError(
                f"log stream {stream!r} epoch {epoch_id} already committed"
            )
        blob = protect(encode(records))
        landed: Optional[bytes] = blob
        if self._faults is not None:
            landed = self._faults.on_write(
                "log",
                f"log stream {stream!r} epoch {epoch_id}",
                blob,
                stream=stream,
            )
        if landed is not None:
            self._segments[key] = landed
        return self._device.write(len(blob))

    def has_epoch(self, stream: str, epoch_id: int) -> bool:
        return (stream, epoch_id) in self._segments

    def read_epoch(self, stream: str, epoch_id: int) -> Tuple[Any, float]:
        """Decode one committed segment; returns (records, io_seconds)."""
        blob = self._segments.get((stream, epoch_id))
        if blob is None:
            raise MissingSegmentError(
                f"log stream {stream!r} has no committed epoch {epoch_id}"
            )
        context = f"log stream {stream!r} epoch {epoch_id}"
        if self._faults is not None:
            self._faults.on_read("log", context, stream=stream)
        seconds = self._device.read(len(blob))
        return decode(verify(blob, context)), seconds

    def read_epochs(
        self, stream: str, first_epoch: int, last_epoch: int
    ) -> Tuple[List[Any], float]:
        """Read and concatenate segments ``first..last`` that exist.

        Epochs without a committed segment are skipped (a scheme with a
        long commit interval legitimately has gaps).
        """
        out: List[Any] = []
        seconds = 0.0
        for epoch_id in range(first_epoch, last_epoch + 1):
            if (stream, epoch_id) in self._segments:
                records, io_s = self.read_epoch(stream, epoch_id)
                seconds += io_s
                out.append(records)
        return out, seconds

    def quarantine(self, stream: str, epoch_id: int) -> int:
        """Drop one unreadable segment (ladder truncate-and-continue).

        Called when recovery detected a torn/corrupt segment and fell
        back to a coarser mechanism for the epoch: the bad bytes must
        not trip a retry.  Returns bytes dropped (0 if absent).
        """
        blob = self._segments.pop((stream, epoch_id), None)
        return len(blob) if blob is not None else 0

    def discard_from(self, epoch_id: int) -> int:
        """Drop every stream's segments at or after ``epoch_id``
        (mid-epoch crash leftovers of epochs that never committed)."""
        doomed = [key for key in self._segments if key[1] >= epoch_id]
        freed = 0
        for key in doomed:
            freed += len(self._segments.pop(key))
        return freed

    def truncate_before(self, epoch_id: int) -> int:
        stale = [key for key in self._segments if key[1] < epoch_id]
        freed = 0
        for key in stale:
            freed += len(self._segments.pop(key))
        return freed

    def bytes_for_stream(self, stream: str) -> int:
        return sum(
            len(blob) for (s, _e), blob in self._segments.items() if s == stream
        )

    @property
    def bytes_stored(self) -> int:
        return sum(len(blob) for blob in self._segments.values())


class ProgressStore:
    """Single-slot durable record of how far a recovery has progressed.

    Recovery is itself a long computation that can crash; this store
    holds its watermark so a re-run resumes instead of restarting from
    scratch.  Two CRC-framed slots:

    - the **watermark** — a snapshot of the partially-recovered state
      plus the next epoch to replay and ladder bookkeeping, overwritten
      as recovery advances (epoch granularity);
    - the **chain mark** — a tiny counter of chains finished *within*
      the in-flight epoch, used to quantify (not skip) the wasted
      re-execution of the idempotently re-run epoch.

    Each ``save`` overwrites in place, so a torn flush damages the slot:
    :meth:`load` then raises and recovery degrades to a fresh start —
    strictly convergent, just slower.  Saving a new watermark clears the
    chain mark (marks are relative to the current watermark's epoch).
    """

    _CONTEXT = "recovery progress watermark"
    _MARK_CONTEXT = "recovery chain mark"

    def __init__(
        self, device: StorageDevice, faults: Optional[FaultInjector] = None
    ):
        self._device = device
        self._faults = faults
        self._slot: Optional[bytes] = None
        self._chain_mark: Optional[bytes] = None
        #: Observability: ``(crash_epoch, next_epoch)`` of every
        #: watermark that landed, in save order.  The invariant checker
        #: asserts the sequence is monotone per crash — resumable
        #: recovery must never publish a watermark that moves the
        #: replay cursor backwards (absent slot damage).
        self.watermark_history: List[Tuple[Any, Any]] = []

    def save(self, record: Any, charge_bytes: Optional[int] = None) -> float:
        """Overwrite the watermark slot; returns I/O seconds.

        ``charge_bytes`` models an append-only watermark log compacted
        off the critical path: the caller passes the *incremental*
        bytes this save actually appends (the state delta since the
        previous watermark) and only those are billed, while the slot
        logically holds the full record for resume.
        """
        blob = protect(encode(record))
        landed: Optional[bytes] = blob
        if self._faults is not None:
            landed = self._faults.on_write("progress", self._CONTEXT, blob)
        if landed is not None:
            self._slot = landed
            self._chain_mark = None
            if isinstance(record, dict) and "next_epoch" in record:
                self.watermark_history.append(
                    (record.get("crash_epoch"), record.get("next_epoch"))
                )
        return self._device.write(
            len(blob) if charge_bytes is None else charge_bytes
        )

    def load(self) -> Tuple[Optional[Any], float]:
        """Read the watermark; returns ``(record, io_seconds)``.

        ``record`` is ``None`` when no watermark was ever saved (or it
        was cleared).  A damaged slot raises like any framed segment.
        """
        if self._slot is None:
            return None, 0.0
        if self._faults is not None:
            self._faults.on_read("progress", self._CONTEXT)
        seconds = self._device.read(len(self._slot))
        return decode(verify(self._slot, self._CONTEXT)), seconds

    def clear(self) -> float:
        """Drop the watermark (recovery finished); returns I/O seconds."""
        self._slot = None
        self._chain_mark = None
        return self._device.write(1)

    @property
    def exists(self) -> bool:
        return self._slot is not None

    def save_chain_mark(self, mark: Any) -> float:
        """Overwrite the per-chain progress mark of the in-flight epoch."""
        blob = protect(encode(mark))
        landed: Optional[bytes] = blob
        if self._faults is not None:
            landed = self._faults.on_write(
                "progress", self._MARK_CONTEXT, blob
            )
        if landed is not None:
            self._chain_mark = landed
        return self._device.write(len(blob))

    def load_chain_mark(self) -> Tuple[Optional[Any], float]:
        """Read the chain mark; ``(None, 0.0)`` when absent.

        A damaged mark is treated as absent — it only quantifies wasted
        work, so losing it must never block recovery.
        """
        if self._chain_mark is None:
            return None, 0.0
        if self._faults is not None:
            self._faults.on_read("progress", self._MARK_CONTEXT)
        seconds = self._device.read(len(self._chain_mark))
        try:
            return decode(verify(self._chain_mark, self._MARK_CONTEXT)), seconds
        except StorageError:
            return None, seconds

    @property
    def bytes_stored(self) -> int:
        total = len(self._slot) if self._slot is not None else 0
        if self._chain_mark is not None:
            total += len(self._chain_mark)
        return total


class Disk:
    """Convenience bundle: one device (and fault plan) shared by the
    four stores."""

    def __init__(
        self,
        device: Optional[StorageDevice] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.device = device or StorageDevice()
        self.faults = faults
        self.events = EventStore(self.device, faults)
        self.snapshots = SnapshotStore(self.device, faults)
        self.logs = LogStore(self.device, faults)
        self.progress = ProgressStore(self.device, faults)

    @property
    def bytes_stored(self) -> int:
        return (
            self.events.bytes_stored
            + self.snapshots.bytes_stored
            + self.logs.bytes_stored
            + self.progress.bytes_stored
        )
