"""Simulated durable storage.

The paper runs on a local Intel Optane SSD (2 GB/s write bandwidth,
146k IOPS).  This package substitutes:

- :mod:`repro.storage.codec` — a real tagged binary codec; everything
  persisted (events, command logs, dependency records, views,
  snapshots) is genuinely serialized to bytes and decoded again during
  recovery, so durability is honest at the bit level.
- :class:`~repro.storage.device.StorageDevice` — a bandwidth + IOPS +
  latency performance model of the SSD; every flush/read is charged to
  virtual time through it.
- :mod:`repro.storage.stores` — crash-surviving stores (event store,
  snapshot store, log store) layered on the codec and the device.
"""

from repro.storage.codec import decode, encode
from repro.storage.device import DeviceStats, StorageDevice
from repro.storage.filedisk import FileBackedDisk
from repro.storage.stores import Disk, EventStore, LogStore, SnapshotStore

__all__ = [
    "encode",
    "decode",
    "StorageDevice",
    "DeviceStats",
    "Disk",
    "FileBackedDisk",
    "EventStore",
    "SnapshotStore",
    "LogStore",
]
