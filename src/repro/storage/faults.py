"""Storage fault injection: deterministic chaos for the durable layer.

A :class:`FaultInjector` sits between the stores and their "medium":
every framed flush passes through :meth:`FaultInjector.on_write` (which
may tear it to a prefix, flip a bit, drop it entirely, or schedule a
mid-epoch crash right after it lands) and every fetch passes through
:meth:`FaultInjector.on_read` (which may raise an injected EIO).

Faults are described by :class:`FaultSpec` and trigger either
deterministically — the N-th operation of a category — or by seeded
probability, so every chaos run is reproducible from its seed.  The
injector never decides *how* a failure is handled; it only damages
bytes the way real storage does and lets the recovery fallback ladder
in :mod:`repro.ft.base` prove it can cope.

Crash faults model §II-C's failure moment landing *inside* group commit
or checkpointing: the triggering flush is torn, ``crash_pending`` is
raised, and the next crash gate (``FTScheme`` epoch steps, the Logging
Manager's commit loop) raises :class:`~repro.errors.InjectedCrash`
after some-but-not-all durable writes of the epoch completed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.crashpoints import validate_point
from repro.errors import ConfigError, InjectedCrash, ReadFaultError

#: Fault kinds applied to writes.
WRITE_KINDS = ("torn", "bitflip", "drop", "crash")
#: Fault kinds applied to reads.
READ_KINDS = ("read_error",)
#: Fault kinds applied to named execution points (crash gates inside
#: the recovery path itself, e.g. ``recovery.epoch-replayed``).
POINT_KINDS = ("crash_point",)
#: Operation categories the injector distinguishes.
TARGETS = ("log", "snapshot", "events", "progress", "any")


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    ``kind`` is one of ``torn`` (keep only a prefix of the flush),
    ``bitflip`` (flip one payload bit), ``drop`` (the flush never
    reaches the medium), ``read_error`` (the fetch fails with EIO),
    ``crash`` (tear the flush, then kill the process at the next crash
    gate), or ``crash_point`` (kill the process when recovery passes
    the named execution ``point``, e.g. ``recovery.epoch-replayed``).
    The fault fires on the ``nth`` operation (1-based) of ``target`` —
    for ``crash_point``, the nth time that *point* is passed — or
    independently with ``probability`` per operation; ``stream``
    restricts log faults to one named log stream.
    """

    kind: str
    target: str = "log"
    nth: Optional[int] = None
    probability: float = 0.0
    stream: Optional[str] = None
    #: Fraction of the framed blob a torn/crash flush retains.
    torn_fraction: float = 0.5
    #: Execution point a ``crash_point`` fault fires at.
    point: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in WRITE_KINDS + READ_KINDS + POINT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.target not in TARGETS:
            raise ConfigError(f"unknown fault target {self.target!r}")
        if self.kind in POINT_KINDS and not self.point:
            raise ConfigError("crash_point fault needs a point name")
        if self.point is not None:
            # The central registry is the checked contract: a spec
            # naming a point no gate will ever fire is a config bug.
            validate_point(self.point)
        if self.kind not in POINT_KINDS and self.point is not None:
            raise ConfigError(f"{self.kind} fault does not take a point")
        if self.nth is None and self.probability <= 0.0:
            raise ConfigError("fault needs an nth index or a probability")
        if self.nth is not None and self.nth < 1:
            raise ConfigError("nth is 1-based and must be >= 1")
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ConfigError("torn_fraction must be in [0, 1)")


@dataclass(frozen=True)
class InjectedFault:
    """Record of one fault that actually fired (for chaos reports)."""

    kind: str
    target: str
    context: str
    op_index: int


class FaultInjector:
    """Deterministic fault plan shared by the three stores of one disk."""

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0):
        self._specs: List[FaultSpec] = list(specs)
        self._rng = random.Random(seed)
        self._write_counts = {t: 0 for t in TARGETS}
        self._read_counts = {t: 0 for t in TARGETS}
        self._point_counts: dict = {}
        self._consumed: set = set()
        self._armed = True
        #: Faults that fired, in order (the chaos report's evidence).
        self.injected: List[InjectedFault] = []
        #: A crash fault fired; the next crash gate must raise.
        self.crash_pending = False
        #: Total crashes fired over the injector's lifetime.
        self.crashes_fired = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    @property
    def armed(self) -> bool:
        return self._armed

    def disarm(self) -> None:
        """Stop injecting (e.g. once the chaos scenario has played out)."""
        self._armed = False

    def arm(self) -> None:
        self._armed = True

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------

    def _fire(
        self,
        spec_index: int,
        spec: FaultSpec,
        category: str,
        count: int,
        stream: Optional[str],
    ) -> bool:
        if spec_index in self._consumed:
            return False
        if spec.target != "any" and spec.target != category:
            return False
        if spec.stream is not None and spec.stream != stream:
            return False
        if spec.nth is not None:
            if count != spec.nth:
                return False
            # nth faults are one-shot; probability faults keep firing.
            self._consumed.add(spec_index)
            return True
        return self._rng.random() < spec.probability

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------

    def on_write(
        self,
        category: str,
        context: str,
        blob: bytes,
        stream: Optional[str] = None,
    ) -> Optional[bytes]:
        """Filter one flush; returns the bytes that land, None if dropped."""
        self._write_counts[category] += 1
        self._write_counts["any"] += 1
        if not self._armed:
            return blob
        for idx, spec in enumerate(self._specs):
            if spec.kind not in WRITE_KINDS:
                continue
            count = self._write_counts[
                "any" if spec.target == "any" else category
            ]
            if not self._fire(idx, spec, category, count, stream):
                continue
            self.injected.append(
                InjectedFault(spec.kind, category, context, count)
            )
            if spec.kind == "torn":
                blob = blob[: int(len(blob) * spec.torn_fraction)]
            elif spec.kind == "bitflip":
                blob = self._flip_bit(blob)
            elif spec.kind == "drop":
                return None
            elif spec.kind == "crash":
                # The flush the crash interrupts is itself torn.
                blob = blob[: int(len(blob) * spec.torn_fraction)]
                self.crash_pending = True
                self.crashes_fired += 1
        return blob

    def on_read(
        self, category: str, context: str, stream: Optional[str] = None
    ) -> None:
        """Gate one fetch; raises :class:`ReadFaultError` if injected."""
        self._read_counts[category] += 1
        self._read_counts["any"] += 1
        if not self._armed:
            return
        for idx, spec in enumerate(self._specs):
            if spec.kind not in READ_KINDS:
                continue
            count = self._read_counts[
                "any" if spec.target == "any" else category
            ]
            if not self._fire(idx, spec, category, count, stream):
                continue
            self.injected.append(
                InjectedFault(spec.kind, category, context, count)
            )
            raise ReadFaultError(
                f"injected device read error (EIO) for {context}"
            )

    def at_point(self, point: str) -> None:
        """Crash gate at a named execution point inside recovery.

        Recovery calls this as it passes each milestone (e.g. right
        after persisting a progress watermark).  A matching
        ``crash_point`` fault raises :class:`InjectedCrash` on the spot,
        modelling the recovering process itself dying mid-recovery.

        The point name must be registered in :mod:`repro.crashpoints` —
        an unregistered gate raises :class:`ConfigError` so a typo'd or
        forgotten registration cannot silently shrink the explorable
        fault space.  Passes are counted even while disarmed, so
        coverage accounting sees every milestone crossed.
        """
        validate_point(point)
        count = self._point_counts.get(point, 0) + 1
        self._point_counts[point] = count
        if not self._armed:
            return
        for idx, spec in enumerate(self._specs):
            if spec.kind not in POINT_KINDS or spec.point != point:
                continue
            if not self._fire(idx, spec, spec.target, count, None):
                continue
            self.injected.append(
                InjectedFault(spec.kind, spec.target, point, count)
            )
            self.crashes_fired += 1
            raise InjectedCrash(
                f"injected crash during recovery at point {point!r}"
            )

    @property
    def points_passed(self) -> dict:
        """Crash-point pass counts: ``{point name: times crossed}``.

        The explorer's coverage accounting reads this after every run;
        a registered point that never appears here across a whole
        exploration marks a gate that has rotted away.
        """
        return dict(self._point_counts)

    def maybe_crash(self) -> None:
        """Crash gate: raise :class:`InjectedCrash` if a crash is pending."""
        if self.crash_pending:
            self.crash_pending = False
            raise InjectedCrash(
                "injected mid-epoch crash: process died after partial "
                "durable writes"
            )

    def _flip_bit(self, blob: bytes) -> bytes:
        """Flip one bit inside the payload region (past the CRC header)."""
        if len(blob) <= 8:
            return blob
        flipped = bytearray(blob)
        pos = 8 + self._rng.randrange(len(blob) - 8)
        flipped[pos] ^= 1 << self._rng.randrange(8)
        return bytes(flipped)
