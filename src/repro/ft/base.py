"""Scheme framework: the shared runtime pipeline and recovery template.

Every fault-tolerance mechanism subclasses :class:`FTScheme` and reuses
the same MorphStream processing pipeline (§II-B): the input stream is
cut into punctuation epochs, each epoch is preprocessed into state
transactions, a task precedence graph is constructed, operations are
executed with dependency-respecting parallelism, and outputs are
delivered at epoch commit.  Schemes differ only in the two hooks:

- :meth:`FTScheme._on_epoch` — what to track/log/persist at runtime;
- :meth:`FTScheme._recover_epoch` — how to replay one lost epoch.

The framework guarantees the paper's failure-model obligations (§II-C):

- input events are persisted by the spout *before* processing, so no
  event is ever lost (delivery guarantee);
- outputs flow through a durable :class:`OutputSink` that deduplicates
  by event sequence number, so regenerated outputs during recovery are
  delivered exactly once;
- a crash destroys everything except the :class:`~repro.storage.Disk`
  and the sink; recovery may only consult durable bytes.

Beyond the paper's clean failure model (§II-C assumes the disk survives
*consistent*), the framework hardens recovery against damaged durable
state with a **graceful fallback ladder**:

1. **fast** — the scheme's own mechanism (MSR views, WAL/DL/LV log
   replay) for every epoch whose segments verify;
2. **replay** — an epoch whose log segment is torn, corrupt, dropped or
   unreadable is quarantined (truncate-and-continue) and reprocessed
   from the durable event store, exactly like CKPT;
3. **checkpoint ladder** — if the latest checkpoint itself is
   unreadable, recovery walks back to the newest older checkpoint that
   verifies (``gc_keep_checkpoints`` controls how much history GC
   retains for this) and replays the extra epochs;
4. only when *no* checkpoint is readable — or the event store has a
   gap — does recovery fail loudly, re-raising the storage error.

Every rung preserves exactness: a fallback reprocesses the identical
deterministic pipeline, so recovered state still matches the serial
ground truth.  A crash may also land *mid-epoch* (during group commit
or checkpointing, injected via the chaos layer); the dying epoch's
partial durable artifacts are discarded and its sealed events are
returned to the ingress tail for reprocessing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import buckets
from repro.engine.events import Event
from repro.engine.execution import (
    build_op_tasks,
    execute_tpg,
    hash_worker_of,
    preprocess,
)
from repro.engine.serial import SerialOutcome
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph, build_tpg
from repro.engine.transactions import Transaction
from repro.errors import (
    ConfigError,
    CorruptSegmentError,
    InjectedCrash,
    MissingSegmentError,
    ReadFaultError,
    RecoveryError,
    TornSegmentError,
    TransactionError,
    WorkloadError,
)
from repro.sim.clock import Machine
from repro.sim.costs import DEFAULT_COSTS, CostModel
from repro.sim.executor import (
    ParallelExecutor,
    ResilientExecutor,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.storage.codec import encode
from repro.storage.stores import Disk


@dataclass
class RuntimeReport:
    """What one runtime phase measured (feeds Figs. 2, 12a, 12c, 12d)."""

    scheme: str
    events_processed: int
    epochs: int
    elapsed_seconds: float
    throughput_eps: float
    buckets: Dict[str, float]
    bytes_logged: int
    bytes_snapshotted: int
    bytes_events: int
    peak_memory_bytes: int
    #: cumulative bytes written for checkpoints over the run (unlike
    #: ``bytes_snapshotted``, which is what remains on disk after GC).
    snapshot_bytes_written: int = 0

    def overhead_seconds(self) -> float:
        """Per-core seconds in the overhead buckets of Fig. 12d."""
        return sum(self.buckets.get(b, 0.0) for b in buckets.RUNTIME_OVERHEAD_BUCKETS)


#: Storage errors the fallback ladder may degrade through; anything
#: else (or these, once the ladder is exhausted) fails recovery loudly.
DEGRADABLE_ERRORS = (
    TornSegmentError,
    CorruptSegmentError,
    MissingSegmentError,
    ReadFaultError,
)


@dataclass(frozen=True)
class DegradedRead:
    """One read served stale from durable state while the node is down.

    Degraded-mode serving (bounded staleness): while recovery is in
    flight, reads may be answered from the newest *readable* checkpoint
    instead of failing.  Every answer is explicitly tagged with its
    staleness bound so downstream consumers can tell a stale value from
    a fresh one — ``staleness_epochs`` is the number of acknowledged
    epochs the serving view lags the crash point (0 means the
    checkpoint landed exactly at the crash epoch).
    """

    table: str
    key: object
    value: float
    #: epoch of the checkpoint that served the read.
    checkpoint_epoch: int
    #: acknowledged epochs the value may be behind (the staleness bound).
    staleness_epochs: int
    #: False when a live node answered with fresh state (cluster mode,
    #: key owned by a surviving shard) — no staleness bound applies.
    stale: bool = True


@dataclass(frozen=True)
class FallbackEvent:
    """One rung the recovery ladder had to step down (for reports)."""

    epoch_id: int
    error: str
    detail: str
    rung: str = "replay"


@dataclass
class RecoveryReport:
    """What one recovery phase measured (feeds Figs. 2, 11, 13, 14)."""

    scheme: str
    events_replayed: int
    epochs_replayed: int
    elapsed_seconds: float
    throughput_eps: float
    buckets: Dict[str, float]
    state_verified: Optional[bool] = None
    #: rung name -> epochs recovered via that rung ("fast" = the
    #: scheme's own mechanism, "replay" = event-reprocessing fallback).
    ladder: Dict[str, int] = field(default_factory=dict)
    #: per-epoch degradations, in replay order.
    fallbacks: List[FallbackEvent] = field(default_factory=list)
    #: the checkpoint recovery actually restored from.
    checkpoint_epoch: Optional[int] = None
    #: unreadable checkpoints skipped before one verified.
    checkpoint_fallbacks: int = 0
    #: checkpoint epochs on disk when the ladder walked them, newest
    #: first (empty when this run resumed past the ladder) — lets a
    #: checker assert the ladder took rungs in order without guessing
    #: what recovery saw after crash-debris discard.
    checkpoint_candidates: List[int] = field(default_factory=list)
    #: this run resumed from a durable progress watermark.
    resumed: bool = False
    #: first epoch this run actually replayed when resuming (None when
    #: the run started from the checkpoint).
    resumed_from_epoch: Optional[int] = None
    #: progress watermarks persisted across all attempts of this crash.
    watermark_saves: int = 0
    #: re-assignment rounds the resilient executor ran (worker deaths).
    reassign_rounds: int = 0
    #: tasks moved off dead workers onto survivors.
    tasks_reassigned: int = 0
    #: workers whose death affected the schedule.
    dead_workers: Tuple[int, ...] = ()
    #: partial task execution lost to worker deaths (virtual seconds).
    wasted_task_seconds: float = 0.0
    #: events replayed by crashed attempts and replayed again because no
    #: watermark covered them (cumulative across attempts).
    wasted_events: int = 0
    #: chains re-executed inside the idempotently re-run in-flight epoch.
    wasted_chains: int = 0
    #: recover() invocations for this crash, including this one.
    attempts: int = 1
    #: virtual seconds across *all* attempts of this crash, including
    #: the time crashed attempts burned before dying (true MTTR).
    elapsed_total_seconds: float = 0.0
    #: durable progress watermarks found damaged (torn/corrupt slot) and
    #: discarded — each one silently degraded an attempt to a fresh
    #: start, which only costs speed but is worth surfacing.
    watermark_degradations: int = 0
    #: execution backend the replay ran on ("sim" or "real").
    backend: str = "sim"
    #: wall-clock seconds the real executor spent running chain groups
    #: on actual cores (0.0 on the sim backend).
    real_wall_seconds: float = 0.0
    #: chain-group descriptors shipped to real workers.
    real_groups: int = 0
    #: deterministic (round, group_id, worker) log from the real
    #: executor — identical across same-seed runs; differential tests
    #: assert on it.
    real_assignments: List[Tuple[int, int, int]] = field(default_factory=list)

    def degraded(self) -> bool:
        """True when any rung below the fast path was taken."""
        return bool(self.fallbacks) or self.checkpoint_fallbacks > 0


@dataclass(frozen=True)
class EpochStats:
    """Per-epoch runtime observability (volatile; for dashboards/tests).

    Recorded after every processed epoch.  ``epoch_len`` captures the
    punctuation interval in force when the epoch was formed, so the
    adaptive commitment controller's decisions are visible as a time
    series.
    """

    epoch_id: int
    num_events: int
    num_aborted: int
    elapsed_seconds: float
    throughput_eps: float
    log_bytes_delta: int
    epoch_len: int


@dataclass
class EpochContext:
    """Everything a scheme hook may inspect about one processed epoch."""

    epoch_id: int
    events: Sequence[Event]
    txns: Sequence[Transaction]
    tpg: TaskPrecedenceGraph
    outcome: SerialOutcome
    outputs: Sequence[Tuple[int, tuple]]


class OutputSink:
    """Durable downstream operator with exactly-once deduplication.

    Delivery is idempotent per event sequence number; delivering a
    *different* payload for an already-delivered sequence is a
    correctness violation and raises :class:`RecoveryError` — this is
    how tests catch schemes that recover to the wrong outputs.
    """

    def __init__(self) -> None:
        self._outputs: Dict[int, tuple] = {}
        self.duplicates_suppressed = 0

    def deliver(self, seq: int, output: tuple) -> None:
        existing = self._outputs.get(seq)
        if existing is None:
            self._outputs[seq] = output
        elif existing == output:
            self.duplicates_suppressed += 1
        else:
            raise RecoveryError(
                f"output for event {seq} regenerated differently: "
                f"{existing!r} != {output!r}"
            )

    def outputs(self) -> Dict[int, tuple]:
        return dict(self._outputs)

    def __len__(self) -> int:
        return len(self._outputs)


class FTScheme(ABC):
    """Base class: MorphStream pipeline + fault-tolerance hooks."""

    name = "abstract"
    #: Whether the spout persists input events (all FT schemes; not NAT).
    persists_events = True
    #: Whether periodic global state snapshots are taken.
    takes_snapshots = True
    #: Whether recovery replays from the persisted event store.  Command
    #: -log schemes (WAL/DL/LV) replay from their own logs instead and
    #: never touch the event store during recovery.
    replays_from_events = True
    #: Log-store streams this scheme group-commits (quarantined when the
    #: fallback ladder abandons an epoch's segments).
    log_streams: Tuple[str, ...] = ()

    def __init__(
        self,
        workload,
        *,
        num_workers: int = 8,
        epoch_len: int = 512,
        snapshot_interval: int = 4,
        costs: CostModel = DEFAULT_COSTS,
        disk: Optional[Disk] = None,
        incremental_snapshots: bool = False,
        full_snapshot_every: int = 4,
        machine: Optional[Machine] = None,
        allow_degraded_recovery: bool = True,
        gc_keep_checkpoints: int = 1,
        recovery_faults: Sequence[WorkerFault] = (),
        reassign_budget: int = 3,
        reassign_backoff: float = 1e-5,
        resumable_recovery: bool = True,
        watermark_every: int = 1,
        backend: str = "sim",
        real_time_scale: float = 0.0,
        real_start_method: Optional[str] = None,
        real_hard_timeout: float = 120.0,
    ):
        if num_workers < 1:
            raise ConfigError("num_workers must be >= 1")
        if backend not in ("sim", "real"):
            raise ConfigError(
                f"unknown execution backend {backend!r} "
                "(expected 'sim' or 'real')"
            )
        if real_time_scale < 0.0:
            raise ConfigError("real_time_scale must be >= 0")
        if epoch_len < 1:
            raise ConfigError("epoch_len must be >= 1")
        if snapshot_interval < 1:
            raise ConfigError("snapshot_interval must be >= 1")
        if full_snapshot_every < 1:
            raise ConfigError("full_snapshot_every must be >= 1")
        if gc_keep_checkpoints < 1:
            raise ConfigError("gc_keep_checkpoints must be >= 1")
        if watermark_every < 1:
            raise ConfigError("watermark_every must be >= 1")
        self.workload = workload
        self.store: Optional[StateStore] = workload.initial_state()
        self.num_workers = num_workers
        self.epoch_len = epoch_len
        self.snapshot_interval = snapshot_interval
        self.costs = costs
        self.disk = disk or Disk()
        self.sink = OutputSink()
        # A shared machine lets several operators of one topology
        # accumulate onto the same virtual cores (group commit spans
        # the whole topology, §III-B).
        self.machine = machine or Machine(num_workers)
        self._executor = ParallelExecutor(
            self.machine, costs.sync_handoff, costs.remote_fetch
        )
        # Threads own state partitions (range partitioning): operations
        # on a record execute on the worker owning its partition, so a
        # same-partition dependency is thread-local and a cross-partition
        # one costs a handoff — the premise of selective logging (§VI-A).
        self._worker_of = self._partition_worker_of()
        self._next_epoch = 0
        self._events_processed = 0
        self._crashed = False
        self._crash_epoch: Optional[int] = None
        self._pending_events: List[Event] = []
        self._peak_buffer_bytes = 0
        self._state_bytes = len(encode(self.store.snapshot()))
        #: incremental checkpointing: delta snapshots of dirty records,
        #: anchored by a full snapshot every ``full_snapshot_every``.
        self.incremental_snapshots = incremental_snapshots
        self.full_snapshot_every = full_snapshot_every
        self._dirty_refs: set = set()
        self._deltas_since_full = 0
        self._snapshot_bytes_written = 0
        #: ladder behaviour: degrade through DEGRADABLE_ERRORS (default)
        #: or fail loudly on the first damaged segment (strict mode).
        self.allow_degraded_recovery = allow_degraded_recovery
        #: GC retains events/logs/snapshots back to the K-th newest
        #: checkpoint, giving the checkpoint ladder somewhere to land.
        self.gc_keep_checkpoints = gc_keep_checkpoints
        self._snapshot_epochs: List[int] = []
        #: per-epoch observability series (volatile).
        self.epoch_stats: List[EpochStats] = []
        #: worker faults injected into recovery runs (the recovery
        #: machinery's own failures; validated against num_workers here
        #: so a bad plan fails at construction, not mid-recovery).
        self.recovery_faults: List[WorkerFault] = list(recovery_faults)
        WorkerFaultPlan(self.recovery_faults, num_workers)
        self.reassign_budget = reassign_budget
        self.reassign_backoff = reassign_backoff
        #: persist recovery-progress watermarks so a crash mid-recovery
        #: resumes instead of restarting from scratch.
        self.resumable_recovery = resumable_recovery
        self.watermark_every = watermark_every
        self._recovery_machine: Optional[Machine] = None
        self._last_watermark_state: Optional[Dict] = None
        self._recovery_seconds_burned = 0.0
        self._recovery_attempts = 0
        self._watermark_saves = 0
        self._unwatermarked_events = 0
        self._wasted_recovery_events = 0
        self._wasted_recovery_chains = 0
        self._chains_done_in_flight = 0
        self._watermark_degradations = 0
        #: execution backend for recovery replays: "sim" charges virtual
        #: seconds to Machine clocks; "real" additionally runs the
        #: recovered chain groups on actual cores via multiprocessing
        #: and cross-checks the result against the virtual replay.
        self.backend = backend
        self.real_time_scale = real_time_scale
        self.real_start_method = real_start_method
        self.real_hard_timeout = real_hard_timeout
        if backend == "real":
            # Fail loudly at construction on hosts that cannot spawn
            # worker processes (BackendError -> distinct CLI exit code).
            from repro.real.backend import ensure_real_backend_supported

            ensure_real_backend_supported()
        #: live only while a real-backend replay runs: the recorder the
        #: compute paths feed, and the process-pool executor.
        self._real_recorder = None
        self._real_executor = None
        self._real_groups = 0
        #: degraded-serving view: (StateStore, checkpoint_epoch), lazily
        #: restored from the newest readable checkpoint while crashed.
        self._degraded_view: Optional[Tuple[StateStore, int]] = None
        #: stale reads answered from checkpoints across this scheme's life.
        self.degraded_reads_served = 0
        if self.takes_snapshots and self.disk.snapshots.latest_epoch() is None:
            # Epoch -1 snapshot: the initial state, so recovery always
            # has a base even if the crash precedes the first interval.
            # A pre-populated disk (reopened after a real process crash)
            # keeps its existing checkpoints instead.
            self.disk.snapshots.put(-1, self.store.snapshot())

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------

    def process_stream(self, events: Sequence[Event]) -> RuntimeReport:
        """Process ``events`` epoch by epoch and report runtime metrics.

        Events carried over from a previous call (less than one epoch
        long) are prepended; a trailing partial epoch is buffered until
        more events arrive (punctuation semantics).
        """
        if self._crashed:
            raise RecoveryError("scheme has crashed; call recover() first")
        incoming = list(events)
        if self.persists_events and incoming:
            # The spout persists input events the moment they arrive
            # (§VI-C step ①) — even a partial epoch survives a crash.
            io_s = self.disk.events.append_events(
                [e.encoded() for e in incoming]
            )
            self._charge_runtime_io(io_s, len(incoming) * 24)
        queue = self._pending_events + incoming
        start_elapsed = self.machine.elapsed()
        start_events = self._events_processed
        while len(queue) >= self.epoch_len:
            batch, queue = queue[: self.epoch_len], queue[self.epoch_len :]
            try:
                self._process_epoch(batch)
            except InjectedCrash:
                # The chaos layer killed the process mid-epoch: the
                # current epoch's durable writes are whatever landed,
                # everything volatile is gone.  The epoch being
                # processed never committed, so the crash point is the
                # previous epoch; recover() discards the partial
                # artifacts and reprocesses the sealed events.
                self._enter_crashed_state(self._next_epoch - 1)
                raise
        self._pending_events = queue
        return self._runtime_report(start_elapsed, start_events)

    def _process_epoch(self, batch: Sequence[Event]) -> List[Tuple[int, tuple]]:
        epoch_id = self._next_epoch
        epoch_start = self.machine.elapsed()
        log_bytes_start = self.disk.logs.bytes_stored
        epoch_len_in_force = self.epoch_len
        if self.persists_events:
            # Payloads are already durable; sealing writes only the
            # epoch boundary record.
            io_s = self.disk.events.seal_epoch(epoch_id, len(batch))
            self._charge_runtime_io(io_s, 16)
        txns, tpg, outcome, outputs = self._compute_epoch(
            self.machine, self._executor, self.store, batch
        )
        ctx = EpochContext(epoch_id, batch, txns, tpg, outcome, outputs)
        self._on_epoch(ctx)
        # Crash point: a scheme's group commit may have torn mid-flush.
        self._crash_gate()
        if self.incremental_snapshots:
            # Records this epoch wrote must be part of any checkpoint
            # taken at this epoch's boundary.
            self._dirty_refs.update(tpg.chains)
        if self.takes_snapshots and (epoch_id + 1) % self.snapshot_interval == 0:
            self._take_snapshot(epoch_id)
        self.machine.barrier(buckets.SYNC, extra=self.costs.sync_handoff)
        for seq, output in outputs:
            self.sink.deliver(seq, output)
        self._next_epoch += 1
        self._events_processed += len(batch)
        epoch_elapsed = self.machine.elapsed() - epoch_start
        self.epoch_stats.append(
            EpochStats(
                epoch_id=epoch_id,
                num_events=len(batch),
                num_aborted=len(outcome.aborted),
                elapsed_seconds=epoch_elapsed,
                throughput_eps=(
                    len(batch) / epoch_elapsed if epoch_elapsed > 0 else 0.0
                ),
                log_bytes_delta=self.disk.logs.bytes_stored - log_bytes_start,
                epoch_len=epoch_len_in_force,
            )
        )
        return outputs

    def _compute_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        batch: Sequence[Event],
        charge_aborts: bool = True,
    ):
        """The dual-phase MorphStream pipeline for one epoch.

        Shared verbatim between runtime processing and CKPT-style
        recovery replay (the only difference is which machine's clocks
        advance).  Returns ``(txns, tpg, outcome, outputs)``.
        """
        costs = self.costs
        txns = preprocess(batch, self.workload, 0)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in batch)
        )
        tpg = build_tpg(txns)
        edge_counts = tpg.edge_counts()
        total_edges = sum(edge_counts.values())
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.construct_node for _ in tpg.ops)
        )
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.construct_edge for _ in range(total_edges))
        )
        # Scheduler queues: each operation chain is dispatched to a
        # worker (the auxiliary scheduling structure MorphStream needs
        # and pure log replay does not).
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.task_dispatch for _ in tpg.chains)
        )
        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_tpg(store, tpg)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())
        tasks = build_op_tasks(
            tpg,
            outcome,
            costs,
            self._worker_of,
            charge_aborts=charge_aborts,
            explore_per_dep=costs.explore_dependency,
        )
        executor.run(tasks)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in batch)
        )
        outputs = self._make_outputs(txns, outcome)
        return txns, tpg, outcome, outputs

    def _make_outputs(
        self, txns: Sequence[Transaction], outcome: SerialOutcome
    ) -> List[Tuple[int, tuple]]:
        outputs = []
        for txn in txns:
            committed = txn.txn_id not in outcome.aborted
            output = self.workload.output_for(txn, committed, outcome.op_values)
            outputs.append((txn.event.seq, output))
        return outputs

    def _partition_worker_of(self):
        """Record → worker mapping via the workload's range partitioning.

        Falls back to a stable hash for records outside the workload's
        partitioned tables (does not happen with the built-in workloads).
        """
        workload = self.workload
        num_workers = self.num_workers
        fallback = hash_worker_of(num_workers)

        def worker_of(ref):
            try:
                return workload.partition_of(ref) % num_workers
            except WorkloadError:
                return fallback(ref)

        return worker_of

    def worker_of_txn(self, txn: Transaction) -> int:
        """The worker owning a transaction: its validator's partition."""
        return self._worker_of(txn.ops[0].ref)

    def _on_epoch(self, ctx: EpochContext) -> None:
        """Scheme hook: runtime tracking/logging for one epoch."""

    def _take_snapshot(self, epoch_id: int) -> None:
        snap = self.store.snapshot()
        self._state_bytes = len(encode(snap))
        base = self.disk.snapshots.latest_epoch()
        take_delta = (
            self.incremental_snapshots
            and base is not None
            and self._deltas_since_full < self.full_snapshot_every - 1
        )
        if take_delta:
            delta: Dict[str, Dict] = {}
            for ref in self._dirty_refs:
                delta.setdefault(ref.table, {})[ref.key] = self.store.get(ref)
            delta_bytes = len(encode(delta))
            io_s = self.disk.snapshots.put_delta(epoch_id, delta, base)
            self._charge_runtime_io(io_s, delta_bytes)
            self._snapshot_bytes_written += delta_bytes
            self._deltas_since_full += 1
        else:
            io_s = self.disk.snapshots.put(epoch_id, snap)
            self._charge_runtime_io(io_s, self._state_bytes)
            self._snapshot_bytes_written += self._state_bytes
            self._deltas_since_full = 0
        self._dirty_refs = set()
        # Crash point: the checkpoint flush itself may have torn — GC
        # must not run then, or the replay sources would be lost.
        self._crash_gate()
        # Snapshot commit waits for notifications from every executor
        # (§VI-C step 6).
        self.machine.barrier(buckets.SYNC, extra=self.costs.sync_handoff)
        # Garbage collection: events, logs and older snapshots covered
        # by a checkpoint are reclaimed (§VI-C) — but only back to the
        # K-th newest checkpoint, so the fallback ladder keeps an older
        # restore point plus its replay sources if this one is damaged.
        self._snapshot_epochs.append(epoch_id)
        if len(self._snapshot_epochs) >= self.gc_keep_checkpoints:
            retain = self._snapshot_epochs[-self.gc_keep_checkpoints]
            self.disk.events.truncate_before(retain + 1)
            self.disk.logs.truncate_before(retain + 1)
            self.disk.snapshots.truncate_before(retain)

    def _crash_gate(self) -> None:
        """Raise :class:`InjectedCrash` if the chaos layer scheduled one."""
        faults = getattr(self.disk, "faults", None)
        if faults is not None:
            faults.maybe_crash()

    def _charge_runtime_io(
        self, device_seconds: float, payload_bytes: int, blocking: bool = False
    ) -> None:
        """Charge one runtime flush: serialization + exposed device time.

        The asynchronous, non-blocking persistence path of §VI-C hides
        ``io_overlap`` of the device time.  Classic write-ahead-style
        group commits are ``blocking``: the pipeline stalls until the
        flush is durable, so the full device time is exposed.
        """
        serialize = payload_bytes * self.costs.serialize_byte
        overlap = 0.0 if blocking else self.costs.io_overlap
        exposed = device_seconds * (1.0 - overlap)
        self.machine.spend_all(buckets.IO, serialize / self.num_workers + exposed)

    def _charge_tracking(self, per_item_seconds: Sequence[float]) -> None:
        """Charge parallelizable dependency-tracking work (Fig. 12d)."""
        self.machine.spend_parallel(buckets.TRACK, per_item_seconds)

    def _note_buffer(self, num_bytes: int) -> None:
        """Record a scheme's volatile log-buffer high-water mark."""
        self._peak_buffer_bytes = max(self._peak_buffer_bytes, num_bytes)

    def _runtime_report(self, start_elapsed: float, start_events: int) -> RuntimeReport:
        elapsed = self.machine.elapsed() - start_elapsed
        events = self._events_processed - start_events
        return RuntimeReport(
            scheme=self.name,
            events_processed=events,
            epochs=self._next_epoch,
            elapsed_seconds=elapsed,
            throughput_eps=events / elapsed if elapsed > 0 else 0.0,
            buckets=self.machine.bucket_breakdown(),
            bytes_logged=self.disk.logs.bytes_stored,
            bytes_snapshotted=self.disk.snapshots.bytes_stored,
            bytes_events=self.disk.events.bytes_stored,
            peak_memory_bytes=self._state_bytes + self._peak_buffer_bytes,
            snapshot_bytes_written=self._snapshot_bytes_written,
        )

    # ------------------------------------------------------------------
    # failure and recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Single-node stoppage: lose everything volatile (§II-C)."""
        if self._next_epoch == 0:
            raise RecoveryError("cannot crash before any epoch was processed")
        self._enter_crashed_state(self._next_epoch - 1)

    def _enter_crashed_state(self, crash_epoch: int) -> None:
        """Shared crash bookkeeping: everything volatile is destroyed."""
        self._crashed = True
        self._crash_epoch = crash_epoch
        self.store = None
        self._pending_events = []
        # A fresh crash starts a fresh recovery history.  The durable
        # progress watermark is NOT touched: it either belongs to this
        # crash (process death during a previous recovery attempt, e.g.
        # a reopened file-backed disk) or is rejected at load time.
        self._recovery_attempts = 0
        self._watermark_saves = 0
        self._unwatermarked_events = 0
        self._wasted_recovery_events = 0
        self._wasted_recovery_chains = 0
        self._chains_done_in_flight = 0
        self._watermark_degradations = 0
        self._last_watermark_state = None
        self._recovery_seconds_burned = 0.0
        self._degraded_view = None
        self._drop_volatile()

    def _drop_volatile(self) -> None:
        """Scheme hook: drop scheme-specific volatile buffers at a crash."""

    @property
    def crash_epoch(self) -> Optional[int]:
        return self._crash_epoch

    def adopt_crash_state(self) -> None:
        """Attach to the durable state of a crashed *previous process*.

        For file-backed disks reopened after a real process death: the
        scheme positions itself as crashed at the last sealed epoch so
        ``recover()`` replays from durable bytes alone.
        """
        last_sealed = self.disk.events.last_sealed_epoch()
        snap_epoch = self.disk.snapshots.latest_epoch()
        candidates = [e for e in (last_sealed, snap_epoch) if e is not None]
        if not candidates:
            raise RecoveryError(
                "disk holds neither sealed epochs nor checkpoints; "
                "nothing to adopt"
            )
        # Right after a checkpoint, GC may have reclaimed every sealed
        # epoch — the crash point is then the checkpoint itself and
        # recovery only restores the snapshot plus the pending tail.
        crash_epoch = max(candidates)
        self._next_epoch = crash_epoch + 1
        self._enter_crashed_state(crash_epoch)

    def degraded_read(self, ref) -> DegradedRead:
        """Serve a read from the newest readable checkpoint while down.

        Degraded-mode serving: the node is crashed and recovery may be
        in flight, but durable checkpoints survive — so a read can be
        answered *stale* instead of erroring, tagged with the exact
        staleness bound (epochs the checkpoint lags the crash point).
        The serving view is restored once per crash and cached; it never
        touches the recovering store, so serving stale reads cannot
        perturb recovery, and the same seed always yields bit-identical
        answers (the checkpoint bytes are deterministic).

        Raises :class:`RecoveryError` when the node is healthy (callers
        must read live state instead — a silent stale read on a healthy
        node would be a correctness bug), a storage error when no
        checkpoint is readable, and :class:`TransactionError` when the
        checkpoint has no such record.
        """
        if not self._crashed:
            raise RecoveryError(
                "degraded reads are only served while the node is down; "
                "read live state instead"
            )
        if self._degraded_view is None:
            state, snap_epoch, _fallbacks, _io = self._load_checkpoint()
            view = StateStore()
            view.restore(state)
            self._degraded_view = (view, snap_epoch)
        view, snap_epoch = self._degraded_view
        value = view.peek(ref)
        if value is None:
            raise TransactionError(
                f"degraded read: checkpoint {snap_epoch} has no record "
                f"at {ref}"
            )
        self.degraded_reads_served += 1
        assert self._crash_epoch is not None
        return DegradedRead(
            table=ref.table,
            key=ref.key,
            value=value,
            checkpoint_epoch=snap_epoch,
            staleness_epochs=self._crash_epoch - snap_epoch,
            stale=True,
        )

    def recover(self) -> RecoveryReport:
        """Template method: restore state to the failure point (§V-C).

        Loads the newest *readable* checkpoint (walking back past
        torn/corrupt ones), then replays every lost epoch — via the
        scheme-specific :meth:`_recover_epoch` where its segments
        verify, degrading to event reprocessing where they do not.
        Epochs are replayed in order with a barrier in between (the
        commit order of the original run must be preserved across
        epochs).  Only when no checkpoint is readable, or the event
        store has a gap where a fallback needs it, does recovery fail —
        loudly, re-raising the storage error, with the scheme still in
        the crashed state so a repaired disk can retry.

        Recovery survives failures of its own machinery:

        - ``recovery_faults`` inject worker deaths/stragglers into the
          replay; lost chains are LPT-re-balanced onto survivors by the
          :class:`ResilientExecutor` within ``reassign_budget`` rounds,
          after which :class:`~repro.errors.ReassignmentError` is
          raised with the scheme still crashed (and the watermark
          intact, so a retry on healthy workers resumes).
        - With ``resumable_recovery``, a durable progress watermark is
          persisted every ``watermark_every`` replayed epochs; a crash
          mid-recovery (``recovery.*`` crash points, injected via the
          chaos layer) loses only the un-watermarked suffix, which the
          next ``recover()`` call re-executes idempotently — the sink
          deduplicates re-delivered outputs and the deterministic
          pipeline reproduces identical state.  Nested crashes simply
          repeat the argument from the newest surviving watermark, so
          any finite number of failures converges.
        """
        if not self._crashed:
            raise RecoveryError("recover() called without a crash")
        machine = Machine(self.num_workers)
        if self.backend == "real":
            # The real backend absorbs the worker faults (translated to
            # cooperative die/straggle semantics); the in-parent virtual
            # replay that records the plan runs fault-free so the
            # recorded ground truth is deterministic.
            from repro.real.backend import RealFaultPlan
            from repro.real.executor import RealExecutor

            plan = None
            self._real_executor = RealExecutor(
                self.num_workers,
                fault_plan=RealFaultPlan.from_worker_faults(
                    self.recovery_faults, self.num_workers
                ),
                reassign_budget=self.reassign_budget,
                start_method=self.real_start_method,
                hard_timeout=self.real_hard_timeout,
            )
            self._real_groups = 0
        else:
            plan = (
                WorkerFaultPlan(self.recovery_faults, self.num_workers)
                if self.recovery_faults
                else None
            )
        executor = ResilientExecutor(
            machine,
            self.costs.sync_handoff,
            self.costs.remote_fetch,
            fault_plan=plan,
            reassign_budget=self.reassign_budget,
            reassign_backoff=self.reassign_backoff,
        )
        self._recovery_attempts += 1
        self._recovery_machine = machine
        try:
            return self._recover(machine, executor, plan)
        except InjectedCrash:
            # The recovering process itself died.  Everything replayed
            # since the last watermark must be replayed again by the
            # next attempt — account it as wasted re-execution.
            self._wasted_recovery_events += self._unwatermarked_events
            self._unwatermarked_events = 0
            self._recovery_seconds_burned += machine.elapsed()
            raise
        finally:
            self._recovery_machine = None

    def _recover(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        plan: Optional[WorkerFaultPlan],
    ) -> RecoveryReport:
        # A mid-epoch crash leaves partial durable artifacts (a torn
        # group commit, a torn checkpoint) for the epoch that never
        # committed; discard them — the epoch is rebuilt from its
        # sealed events, never from debris.  Idempotent across attempts.
        self.disk.logs.discard_from(self._crash_epoch + 1)
        self.disk.snapshots.discard_from(self._crash_epoch + 1)

        ladder: Dict[str, int] = {}
        fallbacks: List[FallbackEvent] = []
        events_replayed = 0
        epochs = 0
        ckpt_fallbacks = 0
        ckpt_candidates: List[int] = []
        resumed = False
        resumed_from: Optional[int] = None
        store = StateStore()

        progress = self._load_progress(machine)
        if progress is not None:
            # Resume: the partially-recovered state and all bookkeeping
            # come from the watermark of the crashed previous attempt.
            store.restore(progress["state"])
            self._last_watermark_state = progress["state"]
            snap_epoch = progress["snap_epoch"]
            start_epoch = progress["next_epoch"]
            ladder = dict(progress["ladder"])
            fallbacks = [FallbackEvent(*f) for f in progress["fallbacks"]]
            events_replayed = progress["events_replayed"]
            epochs = progress["epochs_replayed"]
            ckpt_fallbacks = progress["checkpoint_fallbacks"]
            resumed = True
            if start_epoch <= self._crash_epoch:
                resumed_from = start_epoch
            # A chain mark for the epoch we are about to re-execute
            # quantifies the chains the dead attempt had already run.
            mark, io_m = self.disk.progress.load_chain_mark()
            if io_m:
                machine.spend_all(buckets.RELOAD, io_m)
            if isinstance(mark, dict) and mark.get("epoch") == start_epoch:
                self._wasted_recovery_chains += int(
                    mark.get("chains_done", 0)
                )
        else:
            ckpt_candidates = self.disk.snapshots.epochs_desc()
            state, snap_epoch, ckpt_fallbacks, io_s = self._load_checkpoint()
            store.restore(state)
            machine.spend_all(buckets.RELOAD, io_s)
            start_epoch = snap_epoch + 1
            self._crash_point("recovery.checkpoint-loaded")
            # Initial watermark: a crash from here on resumes without
            # re-walking the checkpoint ladder.  Its state equals the
            # checkpoint just loaded, so the delta-charged append below
            # costs only the header.
            self._last_watermark_state = store.snapshot()
            self._save_progress(
                machine, store, snap_epoch, start_epoch, ladder,
                fallbacks, events_replayed, epochs, ckpt_fallbacks,
            )

        for epoch_id in range(start_epoch, self._crash_epoch + 1):
            self._chains_done_in_flight = 0
            if self.backend == "real":
                outputs, rung = self._recover_epoch_real(
                    machine, executor, store, epoch_id, fallbacks
                )
            else:
                outputs, rung = self._recover_epoch_laddered(
                    machine, executor, store, epoch_id, fallbacks
                )
            machine.barrier(buckets.WAIT)
            for seq, output in outputs:
                self.sink.deliver(seq, output)
            epoch_events = self.disk.events.count_epoch(epoch_id)
            events_replayed += epoch_events
            self._unwatermarked_events += epoch_events
            epochs += 1
            ladder[rung] = ladder.get(rung, 0) + 1
            self._crash_point("recovery.epoch-replayed")
            if self.resumable_recovery and (
                (epoch_id - snap_epoch) % self.watermark_every == 0
                or epoch_id == self._crash_epoch
            ):
                self._save_progress(
                    machine, store, snap_epoch, epoch_id + 1, ladder,
                    fallbacks, events_replayed, epochs, ckpt_fallbacks,
                )
                self._crash_point("recovery.watermark")

        # A mid-epoch crash sealed epochs it never finished processing:
        # un-seal them (newest first, so arrival order is preserved)
        # back into the ingress tail for ordinary reprocessing.
        last_sealed = self.disk.events.last_sealed_epoch()
        if last_sealed is not None and last_sealed > self._crash_epoch:
            for epoch_id in range(last_sealed, self._crash_epoch, -1):
                self.disk.events.reopen_epoch(epoch_id)
            self._next_epoch = self._crash_epoch + 1

        # Restore the ingress tail: events that had arrived but were
        # still waiting for a punctuation when the node failed.  They
        # were never processed, so they simply re-enter the buffer.
        raw_pending, io_p = self.disk.events.read_pending()
        if raw_pending:
            machine.spend_all(buckets.RELOAD, io_p)
            self._pending_events = [Event.from_encoded(r) for r in raw_pending]

        self._crash_point("recovery.finalize")
        if self.resumable_recovery:
            io_c = self.disk.progress.clear()
            machine.spend_all(buckets.IO, io_c)
        self.store = store
        self._crashed = False
        self._degraded_view = None
        elapsed = machine.elapsed()
        rexec = self._real_executor if self.backend == "real" else None
        if rexec is not None:
            # Fault handling happened on real cores; report its stats
            # (same ReassignStats shape) instead of the fault-free
            # virtual replay's.
            stats = rexec.stats
            dead = tuple(sorted(rexec.dead_workers))
        else:
            stats = getattr(executor, "stats", None)
            dead = (
                tuple(sorted(plan.observed_deaths)) if plan is not None else ()
            )
        return RecoveryReport(
            scheme=self.name,
            events_replayed=events_replayed,
            epochs_replayed=epochs,
            elapsed_seconds=elapsed,
            throughput_eps=events_replayed / elapsed if elapsed > 0 else 0.0,
            buckets=machine.bucket_breakdown(),
            ladder=ladder,
            fallbacks=fallbacks,
            checkpoint_epoch=snap_epoch,
            checkpoint_fallbacks=ckpt_fallbacks,
            checkpoint_candidates=ckpt_candidates,
            resumed=resumed,
            resumed_from_epoch=resumed_from,
            watermark_saves=self._watermark_saves,
            reassign_rounds=stats.rounds if stats else 0,
            tasks_reassigned=stats.tasks_reassigned if stats else 0,
            dead_workers=dead,
            wasted_task_seconds=stats.wasted_seconds if stats else 0.0,
            backend=self.backend,
            real_wall_seconds=rexec.wall_seconds if rexec else 0.0,
            real_groups=self._real_groups if rexec else 0,
            real_assignments=(
                list(rexec.assignment_log) if rexec else []
            ),
            wasted_events=self._wasted_recovery_events,
            wasted_chains=self._wasted_recovery_chains,
            attempts=self._recovery_attempts,
            elapsed_total_seconds=self._recovery_seconds_burned + elapsed,
            watermark_degradations=self._watermark_degradations,
        )

    # ------------------------------------------------------------------
    # resumable-recovery plumbing
    # ------------------------------------------------------------------

    def _crash_point(self, name: str) -> None:
        """Named crash gate of the ``recovery.*`` family.

        The chaos layer can kill the recovering process as it passes
        any of these milestones; convergence of re-running ``recover()``
        afterwards is what the resumability machinery guarantees.
        """
        faults = getattr(self.disk, "faults", None)
        if faults is not None:
            faults.at_point(name)

    def _load_progress(self, machine: Machine):
        """Load the durable watermark of a crashed previous attempt.

        Returns the record, or ``None`` to start fresh: no watermark,
        resumability disabled, a damaged slot (a torn watermark flush
        only costs speed, never correctness), or a stale record from an
        unrelated crash or scheme.
        """
        if not self.resumable_recovery or not self.disk.progress.exists:
            return None
        try:
            record, io_s = self.disk.progress.load()
        except DEGRADABLE_ERRORS:
            # A damaged watermark only loses resume progress, never
            # correctness — but count the silent fresh-start so reports
            # can surface how often the slot was found torn.
            self._watermark_degradations += 1
            self.disk.progress.clear()
            return None
        machine.spend_all(buckets.RELOAD, io_s)
        if (
            not isinstance(record, dict)
            or record.get("scheme") != self.name
            or record.get("crash_epoch") != self._crash_epoch
        ):
            self.disk.progress.clear()
            return None
        return record

    def _save_progress(
        self,
        machine: Machine,
        store: StateStore,
        snap_epoch: int,
        next_epoch: int,
        ladder: Dict[str, int],
        fallbacks: List[FallbackEvent],
        events_replayed: int,
        epochs: int,
        ckpt_fallbacks: int,
    ) -> None:
        """Persist the recovery-progress watermark (CRC-framed slot).

        Billed as an append-only delta log: only the state records
        changed since the previous watermark are charged (plus a small
        header), and the flush is asynchronous — recovery never blocks
        on watermark durability, because losing one only costs
        re-execution, never correctness.
        """
        if not self.resumable_recovery:
            return
        snap = store.snapshot()
        record = {
            "scheme": self.name,
            "crash_epoch": self._crash_epoch,
            "snap_epoch": snap_epoch,
            "next_epoch": next_epoch,
            "ladder": dict(ladder),
            "fallbacks": [
                (f.epoch_id, f.error, f.detail, f.rung) for f in fallbacks
            ],
            "events_replayed": events_replayed,
            "epochs_replayed": epochs,
            "checkpoint_fallbacks": ckpt_fallbacks,
            "state": snap,
        }
        delta_bytes = self._watermark_delta_bytes(
            self._last_watermark_state, snap
        )
        io_s = self.disk.progress.save(record, charge_bytes=64 + delta_bytes)
        machine.spend_all(buckets.IO, io_s * (1.0 - self.costs.io_overlap))
        self._last_watermark_state = snap
        self._watermark_saves += 1
        self._unwatermarked_events = 0

    @staticmethod
    def _watermark_delta_bytes(
        prev: Optional[Dict], cur: Dict
    ) -> int:
        """Encoded size of the records changed between two snapshots."""
        if prev is None:
            return len(encode(cur))
        total = 0
        for table, records in cur.items():
            prev_records = prev.get(table)
            if prev_records is None:
                total += len(encode({table: records}))
                continue
            changed = {
                k: v for k, v in records.items() if prev_records.get(k) != v
            }
            if changed:
                total += len(encode({table: changed}))
        return total

    def _mark_chain_progress(self, epoch_id: int) -> None:
        """Per-chain watermark inside the in-flight epoch (recovery only).

        Called by chain-structured schemes after each executed chain
        bundle.  The mark never *skips* chains on resume — the epoch is
        re-executed idempotently — it quantifies how much of the
        in-flight epoch a mid-recovery crash wastes.
        """
        if not (self._crashed and self.resumable_recovery):
            return
        self._chains_done_in_flight += 1
        # Fire-and-forget: the mark is an 8-byte counter overwritten in
        # place and flushed by the async I/O path; the replay pipeline
        # never blocks on it (losing a mark only blurs the wasted-work
        # statistics, never correctness), so no core is charged.
        self.disk.progress.save_chain_mark(
            {"epoch": epoch_id, "chains_done": self._chains_done_in_flight}
        )
        self._crash_point("recovery.chain")

    def _load_checkpoint(self):
        """Checkpoint rung of the ladder: newest readable snapshot.

        Returns ``(state, snap_epoch, fallbacks_taken, io_seconds)``.
        In strict mode (``allow_degraded_recovery=False``) the first
        unreadable checkpoint fails recovery; otherwise older
        checkpoints are tried in turn and the last storage error is
        re-raised only when every candidate is exhausted.
        """
        candidates = self.disk.snapshots.epochs_desc()
        if not candidates:
            raise MissingSegmentError(
                f"{self.name}: no checkpoint available on disk"
            )
        # Lazy import: repro.check.mutations is a leaf module, but the
        # scheme layer must not depend on the checker package at import
        # time (the checker's runner imports this module).
        from repro.check.mutations import mutation_enabled

        fallbacks = 0
        last_error: Optional[Exception] = None
        for snap_epoch in candidates:
            try:
                state, io_s = self.disk.snapshots.load(snap_epoch)
                if fallbacks and mutation_enabled("skip-ladder-rung"):
                    # Seeded bug (checker validation only, armed via the
                    # REPRO_CHECK_MUTATION env flag): report the epoch of
                    # the *newest* candidate instead of the rung actually
                    # loaded, so replay starts after the skipped epochs —
                    # a silent divergence the explorer must find.
                    return state, candidates[0], fallbacks, io_s
                return state, snap_epoch, fallbacks, io_s
            except DEGRADABLE_ERRORS as exc:
                if not self.allow_degraded_recovery:
                    raise
                last_error = exc
                fallbacks += 1
        raise last_error

    def _read_epoch_events(self, machine: Machine, epoch_id: int) -> List[Event]:
        raw, io_e = self.disk.events.read_epochs(epoch_id, epoch_id)
        machine.spend_all(buckets.RELOAD, io_e)
        return [Event.from_encoded(r) for r in raw]

    def _recover_epoch_laddered(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        fallbacks: List[FallbackEvent],
    ) -> Tuple[List[Tuple[int, tuple]], str]:
        """Replay one epoch via the fastest rung whose segments verify.

        The fast path (the scheme's own mechanism) validates every
        durable segment *before* mutating ``store``, so a torn, corrupt,
        dropped or unreadable segment surfaces here with the store still
        consistent; the epoch's segments are then quarantined and the
        epoch is reprocessed from the durable event store (CKPT-style),
        which preserves exactness because the pipeline is deterministic.
        """
        try:
            if self.replays_from_events:
                events = self._read_epoch_events(machine, epoch_id)
            else:
                # Command-log replay: the scheme reloads its own log
                # records; the event store is only consulted for the
                # epoch's event count (delivery accounting).
                events = []
            outputs = self._recover_epoch(
                machine, executor, store, epoch_id, events
            )
            return outputs, "fast"
        except DEGRADABLE_ERRORS as exc:
            if not self.allow_degraded_recovery:
                raise
            if self._real_recorder is not None:
                # The fast rung may have recorded ops before its
                # segments failed verification; the replay rung
                # re-records the epoch from scratch.
                self._real_recorder.reset()
            for stream in self.log_streams:
                self.disk.logs.quarantine(stream, epoch_id)
            # Degrade: reprocess from the durable event store.  If the
            # events themselves are missing or unreadable, this raises
            # again and recovery fails loudly — there is no lower rung.
            events = self._read_epoch_events(machine, epoch_id)
            outputs = self._compute_epoch(machine, executor, store, events)[3]
            fallbacks.append(
                FallbackEvent(epoch_id, type(exc).__name__, str(exc))
            )
            return outputs, "replay"

    def _real_num_groups(self) -> int:
        """Chain groups per epoch plan on the real backend.

        Twice the worker count gives LPT enough units to re-balance
        after a death without fragmenting locality.  WAL overrides this
        to 1 (sequential redo has no intra-epoch parallelism to ship).
        """
        return max(1, self.num_workers * 2)

    def _recover_epoch_real(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        fallbacks: List[FallbackEvent],
    ) -> Tuple[List[Tuple[int, tuple]], str]:
        """Replay one epoch on the real backend (actual cores).

        Three steps, cross-validated:

        1. **Record** — the ordinary laddered replay runs in-parent on a
           *scratch copy* of the store.  It computes every abort verdict
           and read value (the dependency pre-pass) while a
           :class:`~repro.real.plan.PlanRecorder` turns the committed
           chains into picklable :class:`ChainGroupTask` descriptors.
           Virtual-clock accounting is identical to the sim backend, so
           reports stay comparable across backends.
        2. **Execute** — :class:`~repro.real.executor.RealExecutor`
           ships the descriptors to worker processes (LPT-assigned,
           re-assigned around injected deaths) and collects per-group
           results; the recovered partition values merge into ``store``.
        3. **Cross-check** — the merged store must be bit-identical to
           the scratch replay; any divergence is a backend bug and fails
           recovery loudly rather than committing wrong state.
        """
        from repro.real.plan import PlanRecorder, merge_group_results

        recorder = PlanRecorder()
        scratch = store.copy()
        self._real_recorder = recorder
        try:
            outputs, rung = self._recover_epoch_laddered(
                machine, executor, scratch, epoch_id, fallbacks
            )
        finally:
            self._real_recorder = None
        groups = recorder.build(epoch_id, self.real_time_scale)
        self._real_groups += len(groups)
        result = self._real_executor.run_plan(groups)
        merge_group_results(store, result.results)
        if not store.equals(scratch):
            diff = scratch.diff(store, limit=5)
            raise RecoveryError(
                f"{self.name}: real backend diverged from virtual replay "
                f"at epoch {epoch_id}: {diff}"
            )
        return outputs, rung

    @abstractmethod
    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        """Replay one lost epoch onto ``store``; return its outputs."""

    # ------------------------------------------------------------------
    # conveniences
    # ------------------------------------------------------------------

    def committed_transactions(
        self, events: Sequence[Event], aborted: Sequence[int]
    ) -> List[Transaction]:
        """Rebuild the committed transactions of an epoch from events."""
        txns = preprocess(events, self.workload, 0)
        aborted_set = set(aborted)
        return [t for t in txns if t.txn_id not in aborted_set]
