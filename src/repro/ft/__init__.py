"""Fault-tolerance schemes applied to the MorphStream substrate.

Implements the five comparison points of §VIII-A:

- :class:`~repro.ft.native.Native` (NAT) — no fault tolerance, the
  runtime performance upper bound;
- :class:`~repro.ft.checkpoint.GlobalCheckpoint` (CKPT) — periodic
  global checkpoints + input replay;
- :class:`~repro.ft.wal.WriteAheadLog` (WAL) — command logging with
  sequential redo;
- :class:`~repro.ft.dlog.DependencyLogging` (DL) — DistDGCC-style
  fine-grained dependency-graph logging;
- :class:`~repro.ft.lsnvector.LSNVector` (LV) — Taurus-style LSN-vector
  logging.

Two stronger baselines extend the comparison beyond the paper's
strawmen (ROADMAP item 3):

- :class:`~repro.ft.pacman.WALPacman` (PACMAN) — parallel command-log
  redo via static key-access analysis (Wu et al.);
- :class:`~repro.ft.lsnvector.LSNVectorCompressed` (LVC) — Taurus
  compressed vectors logging sparse (stream, pos) pairs.

MorphStreamR itself lives in :mod:`repro.core` and shares the same
:class:`~repro.ft.base.FTScheme` contract.
"""

from repro.ft.base import (
    EpochContext,
    EpochStats,
    FTScheme,
    OutputSink,
    RecoveryReport,
    RuntimeReport,
)
from repro.ft.checkpoint import GlobalCheckpoint
from repro.ft.dlog import DependencyLogging
from repro.ft.lsnvector import LSNVector, LSNVectorCompressed
from repro.ft.native import Native
from repro.ft.pacman import WALPacman
from repro.ft.wal import WriteAheadLog

__all__ = [
    "FTScheme",
    "EpochContext",
    "EpochStats",
    "OutputSink",
    "RuntimeReport",
    "RecoveryReport",
    "Native",
    "GlobalCheckpoint",
    "WriteAheadLog",
    "WALPacman",
    "DependencyLogging",
    "LSNVector",
    "LSNVectorCompressed",
]
