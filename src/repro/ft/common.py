"""Shared helpers for transaction-granularity log replay (DL and LV).

DistDGCC and Taurus both recover at *transaction* granularity: a
transaction replays once every transaction it depends on has replayed.
These helpers lift the operation-level TPG to a transaction-level DAG
and translate it into costed simulator tasks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.engine.execution import op_cost
from repro.engine.serial import SerialOutcome
from repro.engine.tpg import TaskPrecedenceGraph
from repro.sim.costs import CostModel
from repro.sim.executor import SimTask


def txn_level_deps(tpg: TaskPrecedenceGraph) -> Dict[int, Tuple[int, ...]]:
    """Transaction-level dependency sets lifted from operation edges.

    A transaction depends on every distinct earlier transaction that one
    of its operations TD/PD-depends on (LD edges are internal to a
    transaction and vanish at this granularity).
    """
    deps: Dict[int, Tuple[int, ...]] = {}
    for txn in tpg.txns:
        found = set()
        for op in txn.ops:
            for uid in tpg.dependencies(op):
                src_txn = tpg.op_by_uid[uid].txn_id
                if src_txn != txn.txn_id:
                    found.add(src_txn)
        deps[txn.txn_id] = tuple(sorted(found))
    return deps


def build_txn_tasks(
    tpg: TaskPrecedenceGraph,
    outcome: SerialOutcome,
    costs: CostModel,
    worker_of_txn: Callable[[int], int],
    explore_per_dep: float = 0.0,
    extra_fn: Callable[[int, Tuple[int, ...]], Tuple[Tuple[str, float], ...]] = None,
    bucket: str = "execute",
) -> List[SimTask]:
    """One :class:`SimTask` per transaction, wired by txn-level deps.

    Task uid equals the transaction id.  ``extra_fn(txn_id, deps)``
    contributes a scheme's per-transaction overhead components (e.g. the
    LSN vector check of Taurus, whose cost depends on how many
    dependencies the vector encodes).
    """
    deps = txn_level_deps(tpg)
    tasks: List[SimTask] = []
    for txn in tpg.txns:
        seconds = sum(op_cost(op, tpg, outcome, costs) for op in txn.ops)
        txn_deps = deps[txn.txn_id]
        extra = list(extra_fn(txn.txn_id, txn_deps)) if extra_fn else []
        if explore_per_dep and txn_deps:
            extra.append(("explore", explore_per_dep * len(txn_deps)))
        tasks.append(
            SimTask(
                uid=txn.txn_id,
                worker=worker_of_txn(txn.txn_id),
                cost=seconds,
                deps=txn_deps,
                bucket=bucket,
                extra=tuple(extra),
            )
        )
    return tasks
