"""NAT: native MorphStream, no fault tolerance.

The runtime performance upper bound of §VIII-A.  Nothing is persisted,
so a crash is unrecoverable — ``recover()`` raises.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.engine.events import Event
from repro.engine.state import StateStore
from repro.errors import RecoveryError
from repro.ft.base import FTScheme
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor


class Native(FTScheme):
    """MorphStream without any fault-tolerance mechanism."""

    name = "NAT"
    persists_events = False
    takes_snapshots = False

    def recover(self):
        raise RecoveryError(
            "native MorphStream does not support fault tolerance; "
            "state lost at the crash is unrecoverable"
        )

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:  # pragma: no cover - unreachable
        raise RecoveryError("native MorphStream cannot replay epochs")
