"""DL: DistDGCC-style fine-grained dependency logging [23].

Runtime: every committed transaction's log record carries its command
*plus* the incoming and outgoing dependency edges of each of its state
access operations — the graph is logged at *operation* granularity
("fine-grained dependency graphs"), so record size grows linearly with
the number of dependencies.  That is the computation and storage
overhead §III-B calls out for workloads with complex dependencies.

Recovery: the operation-level dependency graph is first *reconstructed*
from the log records (decode + hash probes on cold data — the dominant
Construct time of Fig. 11, which the paper found costlier than simply
reprocessing events), then transactions replay in parallel constrained
by the reconstructed edges.  Parallelism is bounded by the workload's
inherent dependency structure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import buckets
from repro.engine.events import Event
from repro.engine.execution import execute_tpg
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph, build_tpg
from repro.ft.base import EpochContext, FTScheme
from repro.ft.common import build_txn_tasks
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor
from repro.storage.codec import encode

#: Log-store stream name for dependency-log records.
STREAM = "dlog"


def _op_edges(tpg: TaskPrecedenceGraph) -> Dict[int, List[int]]:
    """Operation-level incoming-dependency lists (TD + PD + LD)."""
    return {op.uid: tpg.dependencies(op) for op in tpg.ops}


class DependencyLogging(FTScheme):
    """Command + per-operation edge logging; graph rebuild before replay."""

    name = "DL"
    replays_from_events = False
    log_streams = ("dlog",)

    def _on_epoch(self, ctx: EpochContext) -> None:
        tpg = ctx.tpg
        aborted = ctx.outcome.aborted
        in_edges = _op_edges(tpg)
        out_edges: Dict[int, List[int]] = {op.uid: [] for op in tpg.ops}
        for uid, deps in in_edges.items():
            for src in deps:
                out_edges[src].append(uid)

        records = []
        tracked_edges = 0
        for txn in ctx.txns:
            if txn.txn_id in aborted:
                continue
            op_records = []
            for op in txn.ops:
                ins = tuple(in_edges[op.uid])
                outs = tuple(out_edges[op.uid])
                op_records.append((ins, outs))
                tracked_edges += len(ins) + len(outs)
            records.append((txn.event.encoded(), tuple(op_records)))

        self._charge_tracking(
            [self.costs.log_record_append] * len(records)
            + [self.costs.track_dependency] * tracked_edges
        )
        record_bytes = len(encode(records))
        self._note_buffer(record_bytes)
        io_s = self.disk.logs.commit_epoch(STREAM, ctx.epoch_id, records)
        # Dependency logs flush synchronously before the epoch commits.
        self._charge_runtime_io(io_s, record_bytes, blocking=True)

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        raw, io_s = self.disk.logs.read_epoch(STREAM, epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        commands = [Event.from_encoded(cmd) for cmd, _ops in raw]
        logged_ops = sum(len(op_records) for _cmd, op_records in raw)
        logged_edges = sum(
            len(ins) + len(outs)
            for _cmd, op_records in raw
            for ins, outs in op_records
        )

        # Reconstruct the fine-grained dependency graph from the log
        # records — this is DL's recovery bottleneck (§III-B).
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.rebuild_node for _ in range(logged_ops))
        )
        machine.spend_parallel(
            buckets.CONSTRUCT, (costs.rebuild_edge for _ in range(logged_edges))
        )

        txns = self.committed_transactions(commands, aborted=())
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in commands)
        )
        tpg = build_tpg(txns)
        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_tpg(store, tpg)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())
        # Replay is partitioned like execution: a transaction replays on
        # the worker owning its validator's partition.
        home = {txn.txn_id: self.worker_of_txn(txn) for txn in txns}
        tasks = build_txn_tasks(
            tpg,
            outcome,
            costs,
            worker_of_txn=home.__getitem__,
            explore_per_dep=costs.explore_dependency,
        )
        executor.run(tasks)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in txns)
        )
        return self._make_outputs(txns, outcome)
