"""LV: Taurus-style LSN-vector logging [24].

Runtime: each worker owns one log stream; every committed transaction
appends a record carrying its command and an *LSN vector* — one entry
per log stream holding the position of the latest dependency in that
stream.  Maintaining the vector costs per-entry work on every
transaction, the "significant computation overhead at runtime" of
§III-B.

Recovery: transactions replay on their original stream's worker; before
a transaction executes it checks the global recovery-LSN vector against
its logged vector (per-entry Explore cost), which preserves the partial
order among dependent transactions.  Parallelism is again bounded by
the workload's inherent dependencies, and the frequent vector checks
show up as LV's large Explore time on dependency-heavy workloads (SL).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import buckets
from repro.engine.events import Event
from repro.engine.execution import execute_tpg
from repro.engine.state import StateStore
from repro.engine.tpg import build_tpg
from repro.ft.base import EpochContext, FTScheme
from repro.ft.common import build_txn_tasks, txn_level_deps
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor
from repro.storage.codec import encode

#: Log-store stream name for LSN-vector records.
STREAM = "lv"


class LSNVector(FTScheme):
    """Per-stream logging with LSN vectors preserving partial order."""

    name = "LV"
    replays_from_events = False
    log_streams = ("lv",)

    def _stream_of(self, txn) -> int:
        """The log stream a transaction belongs to: the worker owning
        its validator's partition (each worker logs what it executes)."""
        return self.worker_of_txn(txn)

    def _vectors_for(
        self, txns, deps: Dict[int, Tuple[int, ...]], aborted
    ) -> Dict[int, List[int]]:
        """Compute each committed transaction's LSN vector.

        Stream positions are assigned in timestamp order per stream;
        entry ``i`` of a vector is the largest position among the
        transaction's dependencies living in stream ``i`` (-1 if none).
        """
        position: Dict[int, int] = {}
        stream_of: Dict[int, int] = {}
        next_pos = [0] * self.num_workers
        vectors: Dict[int, List[int]] = {}
        for txn in txns:
            if txn.txn_id in aborted:
                continue
            stream = self._stream_of(txn)
            stream_of[txn.txn_id] = stream
            position[txn.txn_id] = next_pos[stream]
            next_pos[stream] += 1
            vector = [-1] * self.num_workers
            for src in deps[txn.txn_id]:
                if src in position:
                    src_stream = stream_of[src]
                    vector[src_stream] = max(vector[src_stream], position[src])
            vectors[txn.txn_id] = vector
        return vectors

    def _on_epoch(self, ctx: EpochContext) -> None:
        deps = txn_level_deps(ctx.tpg)
        aborted = ctx.outcome.aborted
        vectors = self._vectors_for(ctx.txns, deps, aborted)
        records = []
        tracked = []
        for txn in ctx.txns:
            if txn.txn_id in aborted:
                continue
            records.append((txn.event.encoded(), tuple(vectors[txn.txn_id])))
            tracked.append(
                self.costs.log_record_append
                + self.costs.lsn_vector_entry * self.num_workers
                + self.costs.track_dependency * len(deps[txn.txn_id])
            )
        self._charge_tracking(tracked)
        record_bytes = len(encode(records))
        self._note_buffer(record_bytes)
        io_s = self.disk.logs.commit_epoch(STREAM, ctx.epoch_id, records)
        # Per-stream logs flush synchronously before the epoch commits.
        self._charge_runtime_io(io_s, record_bytes, blocking=True)

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        raw, io_s = self.disk.logs.read_epoch(STREAM, epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        commands = [Event.from_encoded(cmd) for cmd, _vec in raw]

        txns = self.committed_transactions(commands, aborted=())
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in commands)
        )
        tpg = build_tpg(txns)
        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_tpg(store, tpg)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())

        def vector_check(_txn_id, txn_deps):
            # A transaction with no dependencies passes the global
            # recovery-LSN-vector check immediately — Taurus is
            # genuinely lightweight there (this is why LV leads the
            # uniform write-only sweep of Fig. 14b).  Each dependency
            # adds repeated polls of the contended global vector until
            # the partial order is satisfied.
            if not txn_deps:
                return (("explore", 0.5 * costs.lsn_vector_entry),)
            polls = 2 + 8 * len(txn_deps)
            return (("explore", costs.lsn_vector_entry * polls),)

        home = {txn.txn_id: self._stream_of(txn) for txn in txns}
        tasks = build_txn_tasks(
            tpg,
            outcome,
            costs,
            worker_of_txn=home.__getitem__,
            explore_per_dep=costs.explore_dependency,
            extra_fn=vector_check,
        )
        executor.run(tasks)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in txns)
        )
        return self._make_outputs(txns, outcome)
