"""LV: Taurus-style LSN-vector logging [24].

Runtime: each worker owns one log stream; every committed transaction
appends a record carrying its command and an *LSN vector* — one entry
per log stream holding the position of the latest dependency in that
stream.  Maintaining the vector costs per-entry work on every
transaction, the "significant computation overhead at runtime" of
§III-B.

Recovery: transactions replay on their original stream's worker; before
a transaction executes it checks the global recovery-LSN vector against
its *logged* vector (per-entry Explore cost), which preserves the
partial order among dependent transactions.  The logged vectors are
first verified against the partial order recomputed from the rebuilt
committed-only TPG — a mismatch means the vector payload is stale or
corrupted, and recovery degrades to event replay (rung 2) rather than
trusting it.  Parallelism is again bounded by the workload's inherent
dependencies, and the frequent vector checks show up as LV's large
Explore time on dependency-heavy workloads (SL).

:class:`LSNVectorCompressed` (LVC) is the compressed-vector variant of
the Taurus paper: instead of a dense ``num_workers``-wide vector it
logs only the sparse ``(stream, position)`` pairs of streams that
actually hold a dependency, so runtime vector maintenance is paid per
*set* entry rather than per stream.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro import buckets
from repro.engine.events import Event
from repro.engine.execution import execute_tpg
from repro.engine.state import StateStore
from repro.engine.tpg import build_tpg
from repro.engine.transactions import Transaction
from repro.errors import VectorMismatchError
from repro.ft.base import EpochContext, FTScheme
from repro.ft.common import build_txn_tasks, txn_level_deps
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor
from repro.storage.codec import encode

#: Log-store stream name for LSN-vector records.
STREAM = "lv"


class LSNVector(FTScheme):
    """Per-stream logging with LSN vectors preserving partial order."""

    name = "LV"
    replays_from_events = False
    log_streams = ("lv",)

    def _stream_of(self, txn) -> int:
        """The log stream a transaction belongs to: the worker owning
        its validator's partition (each worker logs what it executes)."""
        return self.worker_of_txn(txn)

    # --- vector representation (LVC overrides) --------------------------

    def _encode_vector(self, vector: Sequence[int]) -> tuple:
        """Wire form of one vector: dense, one entry per stream."""
        return tuple(vector)

    def _decode_vector(self, encoded: Sequence) -> Tuple[int, ...]:
        """Dense vector back from its wire form."""
        return tuple(encoded)

    def _vector_track_cost(self, vector: Sequence[int], dep_count: int) -> float:
        """Runtime cost of logging one record and maintaining its vector.

        The dense representation pays per-entry maintenance on every
        stream, set or not — Taurus's runtime overhead at §III-B.
        """
        return (
            self.costs.log_record_append
            + self.costs.lsn_vector_entry * self.num_workers
            + self.costs.track_dependency * dep_count
        )

    def _vector_verify_cost(self, vector: Sequence[int]) -> float:
        """Recovery cost of checking one logged vector against the one
        recomputed from the rebuilt TPG.

        This is a *local* compare of two warm vectors during the log
        scan — unlike replay's vector checks there is no synchronized
        access to the contended global recovery vector, so the per-entry
        unit is a fraction of ``lsn_vector_entry``, and only set entries
        matter (equal set-entry lists plus equal counts imply the dense
        forms match).
        """
        entries = sum(1 for pos in vector if pos >= 0)
        return 0.25 * self.costs.lsn_vector_entry * (1 + entries)

    # --- vector computation ----------------------------------------------

    def _vectors_for(
        self, txns, deps: Dict[int, Tuple[int, ...]], aborted
    ) -> Dict[int, List[int]]:
        """Compute each committed transaction's LSN vector.

        Stream positions are assigned in timestamp order per stream;
        entry ``i`` of a vector is the largest position among the
        transaction's dependencies living in stream ``i`` (-1 if none).

        Epoch-local contract: transaction ids restart at zero every
        epoch (``preprocess`` renumbers), so a dependency source is
        always a *same-epoch* transaction — never one from an earlier
        epoch.  ``deps`` must therefore come from a committed-only TPG
        (:meth:`_committed_deps`): every source is then a committed
        transaction that already holds a log position.  A source without
        a position is a dependency that would be silently encoded as -1
        ("no dependency") — historically this swallowed dependencies
        routed through aborted transactions — so it fails loudly here.
        """
        position: Dict[int, int] = {}
        stream_of: Dict[int, int] = {}
        next_pos = [0] * self.num_workers
        vectors: Dict[int, List[int]] = {}
        for txn in txns:
            if txn.txn_id in aborted:
                continue
            stream = self._stream_of(txn)
            stream_of[txn.txn_id] = stream
            position[txn.txn_id] = next_pos[stream]
            next_pos[stream] += 1
            vector = [-1] * self.num_workers
            for src in deps[txn.txn_id]:
                if src not in position:
                    raise AssertionError(
                        f"txn {txn.txn_id} depends on txn {src} which "
                        "holds no log position: dependencies must be "
                        "computed over the committed-only TPG (a source "
                        "that is aborted or later-timestamp would be "
                        "silently encoded as 'no dependency')"
                    )
                src_stream = stream_of[src]
                vector[src_stream] = max(vector[src_stream], position[src])
            vectors[txn.txn_id] = vector
        return vectors

    def _committed_deps(
        self, txns: Sequence[Transaction], tpg, aborted
    ) -> Dict[int, Tuple[int, ...]]:
        """Transaction-level dependencies over the committed-only TPG.

        The full-batch TPG routes edges *through* aborted transactions:
        a committed transaction reading a record last written by an
        aborted one depends, in the full graph, on the aborted writer —
        which logs nothing and holds no position.  Since aborted
        operations are pass-throughs (they surface their TD-chain
        predecessor's value), the true ordering constraint is on the
        nearest *committed* writer, which is exactly the edge the TPG
        rebuilt from committed transactions alone produces.  This also
        makes runtime vectors bit-identical to the vectors recovery
        recomputes from its committed-only rebuild.
        """
        if not aborted:
            return txn_level_deps(tpg)
        committed = [t for t in txns if t.txn_id not in aborted]
        return txn_level_deps(build_tpg(committed))

    def _on_epoch(self, ctx: EpochContext) -> None:
        aborted = ctx.outcome.aborted
        deps = self._committed_deps(ctx.txns, ctx.tpg, aborted)
        vectors = self._vectors_for(ctx.txns, deps, aborted)
        records = []
        tracked = []
        for txn in ctx.txns:
            if txn.txn_id in aborted:
                continue
            vector = vectors[txn.txn_id]
            records.append((txn.event.encoded(), self._encode_vector(vector)))
            tracked.append(
                self._vector_track_cost(vector, len(deps[txn.txn_id]))
            )
        self._charge_tracking(tracked)
        record_bytes = len(encode(records))
        self._note_buffer(record_bytes)
        io_s = self.disk.logs.commit_epoch(STREAM, ctx.epoch_id, records)
        # Per-stream logs flush synchronously before the epoch commits.
        self._charge_runtime_io(io_s, record_bytes, blocking=True)

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        raw, io_s = self.disk.logs.read_epoch(STREAM, epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        commands = [Event.from_encoded(cmd) for cmd, _vec in raw]
        logged = [self._decode_vector(vec) for _cmd, vec in raw]

        txns = self.committed_transactions(commands, aborted=())
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in commands)
        )
        tpg = build_tpg(txns)

        # Fidelity check before any state mutation: the logged vectors
        # must agree, entry for entry, with the partial order recomputed
        # from the rebuilt committed-only TPG.  Records are logged in
        # commit (timestamp) order, and positions are renumbering-
        # invariant, so the comparison is positional.  A mismatch means
        # the vector payload is stale or corrupted even though its CRC
        # passed; raising here (a degradable error) quarantines the LV
        # stream and replays the epoch from the event store instead.
        recomputed = self._vectors_for(txns, txn_level_deps(tpg), aborted=())
        machine.spend_parallel(
            buckets.EXPLORE, (self._vector_verify_cost(v) for v in logged)
        )
        for index, (txn, logged_vec) in enumerate(zip(txns, logged)):
            if tuple(logged_vec) != tuple(recomputed[txn.txn_id]):
                raise VectorMismatchError(
                    f"epoch {epoch_id} record {index}: logged LSN vector "
                    f"{tuple(logged_vec)} disagrees with recomputed "
                    f"partial order {tuple(recomputed[txn.txn_id])}",
                    epoch_id=epoch_id,
                    record_index=index,
                )

        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_tpg(store, tpg)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())

        logged_by_txn = {
            txn.txn_id: vec for txn, vec in zip(txns, logged)
        }

        def vector_check(txn_id, txn_deps):
            # A transaction whose logged vector is empty passes the
            # global recovery-LSN-vector check immediately — Taurus is
            # genuinely lightweight there (this is why LV leads the
            # uniform write-only sweep of Fig. 14b).  Each *set* entry
            # adds repeated polls of the contended global vector until
            # that stream's recovery LSN reaches the logged position;
            # dependencies on the same stream collapse into one entry.
            entries = sum(1 for p in logged_by_txn[txn_id] if p >= 0)
            if not entries:
                return (("explore", 0.5 * costs.lsn_vector_entry),)
            polls = 2 + 8 * entries
            return (("explore", costs.lsn_vector_entry * polls),)

        home = {txn.txn_id: self._stream_of(txn) for txn in txns}
        tasks = build_txn_tasks(
            tpg,
            outcome,
            costs,
            worker_of_txn=home.__getitem__,
            explore_per_dep=costs.explore_dependency,
            extra_fn=vector_check,
        )
        executor.run(tasks)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in txns)
        )
        return self._make_outputs(txns, outcome)


class LSNVectorCompressed(LSNVector):
    """Taurus compressed vectors: sparse (stream, position) pairs.

    The dense scheme pays ``lsn_vector_entry`` maintenance on all
    ``num_workers`` entries of every committed transaction's vector —
    most of which are -1 on real workloads.  Taurus §6 compresses the
    vector to only its set entries; we log sorted ``(stream, pos)``
    pairs and re-derive the runtime tracking cost as one base update
    plus one per set entry.  Recovery decodes back to the dense form,
    so verification and replay share the LV path, but per-record
    verify/check work also scales with set entries rather than stream
    count.
    """

    name = "LVC"

    def _encode_vector(self, vector: Sequence[int]) -> tuple:
        return tuple(
            (stream, pos) for stream, pos in enumerate(vector) if pos >= 0
        )

    def _decode_vector(self, encoded: Sequence) -> Tuple[int, ...]:
        vector = [-1] * self.num_workers
        for stream, pos in encoded:
            vector[stream] = pos
        return tuple(vector)

    def _vector_track_cost(self, vector: Sequence[int], dep_count: int) -> float:
        entries = sum(1 for pos in vector if pos >= 0)
        return (
            self.costs.log_record_append
            + self.costs.lsn_vector_entry * (1 + entries)
            + self.costs.track_dependency * dep_count
        )
