"""PACMAN-style parallel command-log redo (Wu et al., VLDB'17).

"Fast Failure Recovery for Main-Memory DBMSs on Multicores" showed that
a command log does not force sequential redo: a *static* analysis over
the sorted log — which records does each transaction touch? — partitions
it into batches that share no records, and batches replay on all cores
with no synchronization at all.  Transactions inside a batch replay in
timestamp order; transactions in different batches commute.

``WALPacman`` keeps WAL's runtime path byte-for-byte (same command
records, same "wal" stream, same group commit), so Fig. 12's runtime
overheads are identical — only recovery changes:

1. read + globally sort the command log (same merge-sort charge as WAL);
2. one linear pass of union-find over each transaction's record
   accesses (reads, writes, condition refs) — the static key-access
   analysis, charged to Construct;
3. connected components become batches; batches are LPT-packed onto
   workers and replayed in parallel, each batch strictly sequential
   internally.

Because every TPG edge (TD/PD/LD) implies a shared record, dependent
transactions always land in the same batch — the replay needs no
runtime dependency checks, which is PACMAN's core trade: analysis cost
up front for zero Explore cost during redo.  The weakness survives too:
under skew the components collapse into one giant batch and redo is
sequential again (the regime where MSR's restructuring wins).

The optional *hybrid* mode seeds MSR's chain-partition scheduling with
the same static analysis: instead of whole components as units, the
chain-affinity graph is greedily partitioned at record granularity
(components stay co-located since they share no cross edges, but a
giant component can now be split), and replay pays normal cross-worker
synchronization on the cut dependencies — PACMAN's analysis with MSR's
load balance.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

from repro import buckets
from repro.core.assignment import lpt_assign
from repro.core.partition import build_chain_graph, greedy_partition
from repro.engine.events import Event
from repro.engine.execution import execute_tpg, op_cost
from repro.engine.refs import StateRef
from repro.engine.state import StateStore
from repro.engine.tpg import TaskPrecedenceGraph, build_tpg
from repro.engine.transactions import Transaction
from repro.ft.base import FTScheme
from repro.ft.common import build_txn_tasks
from repro.ft.wal import STREAM, WriteAheadLog
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor, SimTask


def txn_refs(txn: Transaction) -> List[StateRef]:
    """Every record a transaction touches, sorted and deduplicated:
    operation writes, operation reads, and condition refs — the full
    read/write footprint PACMAN's static analysis inspects."""
    refs = set()
    for op in txn.ops:
        refs.add(op.ref)
        refs.update(op.reads)
    for cond in txn.conditions:
        refs.update(cond.refs)
    return sorted(refs)


def static_batches(txns: Sequence[Transaction]) -> Tuple[Dict[int, int], int]:
    """PACMAN's static key-access analysis over a sorted command log.

    Union-find over state records: all records touched by one
    transaction are unioned, so transactions sharing any record
    (directly or transitively) end up in the same connected component.
    Returns ``(component_of_txn, accesses)`` where components are
    numbered densely in order of first appearance (deterministic) and
    ``accesses`` counts the union-find probes performed, for costing.
    """
    parent: Dict[StateRef, StateRef] = {}

    def find(ref: StateRef) -> StateRef:
        root = ref
        while parent[root] != root:
            root = parent[root]
        while parent[ref] != root:
            parent[ref], ref = root, parent[ref]
        return root

    accesses = 0
    footprints: List[List[StateRef]] = []
    for txn in txns:
        refs = txn_refs(txn)
        footprints.append(refs)
        accesses += len(refs)
        for ref in refs:
            parent.setdefault(ref, ref)
        first = refs[0]
        for ref in refs[1:]:
            ra, rb = find(first), find(ref)
            if ra != rb:
                parent[rb] = ra

    component_of_txn: Dict[int, int] = {}
    component_ids: Dict[StateRef, int] = {}
    for txn, refs in zip(txns, footprints):
        root = find(refs[0])
        if root not in component_ids:
            component_ids[root] = len(component_ids)
        component_of_txn[txn.txn_id] = component_ids[root]
    return component_of_txn, accesses


class WALPacman(WriteAheadLog):
    """Command logging with PACMAN-parallel redo via static analysis."""

    name = "PACMAN"

    def __init__(self, workload, *, hybrid: bool = False, **kwargs):
        super().__init__(workload, **kwargs)
        #: Hybrid mode: split batches at chain granularity and schedule
        #: like MSR, paying synchronization on the cut dependencies.
        self.hybrid = hybrid

    def _real_num_groups(self) -> int:
        # Unlike WAL's single sequential group, the parallel redo ships
        # a real chain-group plan to the multiprocessing backend — the
        # base policy of two groups per worker so LPT can re-balance
        # after a death without fragmenting locality.
        return FTScheme._real_num_groups(self)

    def _batch_tasks(
        self,
        machine: Machine,
        tpg: TaskPrecedenceGraph,
        outcome,
    ) -> List[SimTask]:
        """One task per transaction, chained inside its static batch.

        Batches share no records, so there are no cross-batch edges and
        replay pays zero Explore/sync cost; each batch is pinned to one
        worker (LPT on total execution weight) and its transactions
        replay strictly in timestamp order.
        """
        costs = self.costs
        component_of_txn, accesses = static_batches(tpg.txns)
        # The analysis is one union-find probe per record access, done
        # in parallel over the sorted log before replay starts.
        machine.spend_parallel(
            buckets.CONSTRUCT,
            itertools.repeat(costs.static_analysis_access, accesses),
        )

        txn_cost = {
            txn.txn_id: sum(
                op_cost(op, tpg, outcome, costs) for op in txn.ops
            )
            for txn in tpg.txns
        }
        num_components = max(component_of_txn.values(), default=-1) + 1
        weights = [0.0] * num_components
        for txn_id, component in component_of_txn.items():
            weights[component] += txn_cost[txn_id]
        assignment, _loads = lpt_assign(weights, self.num_workers)
        machine.spend_parallel(
            buckets.CONSTRUCT,
            itertools.repeat(costs.task_dispatch, num_components),
        )

        tasks: List[SimTask] = []
        last_in_component: Dict[int, int] = {}
        for txn in tpg.txns:
            component = component_of_txn[txn.txn_id]
            prev = last_in_component.get(component)
            tasks.append(
                SimTask(
                    uid=txn.txn_id,
                    worker=assignment[component],
                    cost=txn_cost[txn.txn_id],
                    deps=(prev,) if prev is not None else (),
                    bucket=buckets.EXECUTE,
                    group=component,
                )
            )
            last_in_component[component] = txn.txn_id
        return tasks

    def _hybrid_tasks(
        self,
        machine: Machine,
        tpg: TaskPrecedenceGraph,
        outcome,
    ) -> List[SimTask]:
        """MSR chain scheduling seeded by the static analysis.

        The chain-affinity graph's connected components are exactly
        PACMAN's batches (an edge requires a shared dependency), so the
        greedy partitioner keeps whole small batches co-located — but it
        may *split* a giant skewed batch across workers, trading the
        zero-sync property for balance.  Cut dependencies then pay the
        usual cross-worker exploration/synchronization during replay.
        """
        costs = self.costs
        graph = build_chain_graph(tpg)
        machine.spend_parallel(
            buckets.CONSTRUCT,
            itertools.repeat(costs.partition_vertex, len(graph.vertices)),
        )
        machine.spend_parallel(
            buckets.CONSTRUCT,
            itertools.repeat(costs.partition_edge, len(graph.edges)),
        )
        placement = greedy_partition(graph, self.num_workers)
        home = {
            txn.txn_id: placement[txn.ops[0].ref] for txn in tpg.txns
        }
        return build_txn_tasks(
            tpg,
            outcome,
            costs,
            worker_of_txn=home.__getitem__,
            explore_per_dep=costs.explore_dependency,
        )

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        raw, io_s = self.disk.logs.read_epoch(STREAM, epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        commands = [Event.from_encoded(r) for r in raw]

        # Same global merge sort as WAL: the log is still command-only
        # and group-committed by independent workers.
        self._charge_sort(machine, self._sort_seconds(len(commands)))
        commands.sort(key=lambda e: e.seq)

        txns = self.committed_transactions(commands, aborted=())
        machine.spend_parallel(
            buckets.EXECUTE, (costs.preprocess_event for _ in commands)
        )
        tpg = build_tpg(txns)
        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_tpg(store, tpg)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())

        if self.hybrid:
            tasks = self._hybrid_tasks(machine, tpg, outcome)
        else:
            tasks = self._batch_tasks(machine, tpg, outcome)
        executor.run(tasks)
        machine.spend_parallel(
            buckets.EXECUTE, (costs.postprocess_event for _ in txns)
        )
        return self._make_outputs(txns, outcome)
