"""WAL: command logging with sequential redo (§III-B).

Runtime: the command (the triggering event) of every *committed*
transaction is group-committed per epoch — command logging keeps
records small and "lowers the pressure on I/O" [22].

Recovery: command logs from all workers must first be merged into one
global timestamp order (the paper found this sorting dominates WAL's
Reload time), then redone strictly sequentially on a single worker —
every other worker idles, which is why WAL shows by far the largest
Wait component in Fig. 11.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

from repro import buckets
from repro.engine.events import Event
from repro.engine.execution import op_cost
from repro.engine.state import StateStore
from repro.engine.tpg import build_tpg
from repro.engine.serial import execute_serial
from repro.ft.base import EpochContext, FTScheme
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor
from repro.storage.codec import encode

#: Log-store stream name for WAL command records.
STREAM = "wal"


class WriteAheadLog(FTScheme):
    """Command logging; redo is a global sort plus a sequential replay."""

    name = "WAL"
    replays_from_events = False
    log_streams = ("wal",)

    #: Effective parallelism of the k-way merge: the final merge pass is
    #: sequential, so adding cores beyond this stops helping
    #: (docs/cost-model.md, "parallelism capped at 4").
    SORT_PARALLELISM = 4

    def _sort_seconds(self, n: int) -> float:
        """Total comparison work of the global k-way merge, in seconds.

        A k-way merge of the k per-worker runs costs n*log2(k)
        comparisons; a single worker keeps one already-ordered stream
        and pays nothing.
        """
        if n <= 1 or self.num_workers <= 1:
            return 0.0
        return self.costs.sort_per_element * n * math.log2(self.num_workers)

    def _charge_sort(self, machine: Machine, sort_seconds: float) -> None:
        """Charge the merge sort to the cores that actually perform it.

        Only ``min(SORT_PARALLELISM, num_cores)`` cores participate,
        splitting the comparison work evenly; the rest idle and absorb
        the gap as WAIT at the next barrier.  Total CPU charged equals
        ``sort_seconds`` exactly.  (An earlier model charged every core
        the per-participant share via ``spend_all``, inflating the
        RELOAD total by ``num_cores / min(4, num_cores)`` while leaving
        the makespan unchanged.)
        """
        if sort_seconds <= 0.0:
            return
        participants = min(self.SORT_PARALLELISM, machine.num_cores)
        share = sort_seconds / participants
        for core in machine.cores[:participants]:
            core.spend(buckets.RELOAD, share)

    def _on_epoch(self, ctx: EpochContext) -> None:
        records = [
            txn.event.encoded()
            for txn in ctx.txns
            if txn.txn_id not in ctx.outcome.aborted
        ]
        self._charge_tracking([self.costs.log_record_append] * len(records))
        record_bytes = len(encode(records))
        self._note_buffer(record_bytes)
        io_s = self.disk.logs.commit_epoch(STREAM, ctx.epoch_id, records)
        # Command logs must be durable before the epoch commits: the
        # flush is on the critical path (no async overlap).
        self._charge_runtime_io(io_s, record_bytes, blocking=True)

    def _real_num_groups(self) -> int:
        # Sequential redo: WAL replays on one core, so its real-backend
        # plan is a single chain group (fidelity over parallelism).
        return 1

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        costs = self.costs
        raw, io_s = self.disk.logs.read_epoch(STREAM, epoch_id)
        machine.spend_all(buckets.RELOAD, io_s)
        commands = [Event.from_encoded(r) for r in raw]

        # Global sort to re-establish a total order over the commands
        # group-committed by independent workers.  The merge parallelizes
        # poorly (the final pass is sequential), so effective parallelism
        # is capped — this is why the paper observed WAL spending the
        # longest time on reloading.
        self._charge_sort(machine, self._sort_seconds(len(commands)))
        commands.sort(key=lambda e: e.seq)

        # Sequential redo: one worker re-executes every committed
        # transaction in timestamp order; the rest idle (wait).
        txns = self.committed_transactions(commands, aborted=())
        redo_core = machine.cores[0]
        redo_core.spend(
            buckets.EXECUTE, costs.preprocess_event * len(commands)
        )
        tpg = build_tpg(txns)
        recorder = self._real_recorder
        if recorder is not None:
            from repro.real.plan import capture_base

            base_token = capture_base(tpg, store)
        outcome = execute_serial(store, txns)
        if recorder is not None:
            recorder.record_tpg(tpg, outcome, base_token, self._real_num_groups())
        for op in tpg.ops:
            redo_core.spend(buckets.EXECUTE, op_cost(op, tpg, outcome, costs))
        redo_core.spend(buckets.EXECUTE, costs.postprocess_event * len(txns))
        return self._make_outputs(txns, outcome)
