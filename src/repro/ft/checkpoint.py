"""CKPT: global checkpointing with input replay (§III-A).

Runtime: persist input events (spout) and take periodic global state
snapshots — no per-transaction logging at all, hence the lowest runtime
overhead of any scheme (Fig. 12a).

Recovery: restore the latest checkpoint and *reprocess* every lost
input event through the full MorphStream pipeline — preprocessing, TPG
construction, dependency-constrained execution, abort handling,
postprocessing.  Recovery time is therefore bounded by the cost of
recomputing everything since the checkpoint (Fig. 11: large Construct /
Explore / Abort components).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.engine.events import Event
from repro.engine.state import StateStore
from repro.ft.base import FTScheme
from repro.sim.clock import Machine
from repro.sim.executor import ParallelExecutor


class GlobalCheckpoint(FTScheme):
    """Periodic global checkpoints; recovery reprocesses lost inputs."""

    name = "CKPT"

    def _recover_epoch(
        self,
        machine: Machine,
        executor: ParallelExecutor,
        store: StateStore,
        epoch_id: int,
        events: Sequence[Event],
    ) -> List[Tuple[int, tuple]]:
        _txns, _tpg, _outcome, outputs = self._compute_epoch(
            machine, executor, store, events
        )
        return outputs
