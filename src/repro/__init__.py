"""MorphStreamR reproduction: fast parallel recovery for transactional
stream processing on multicores (ICDE 2024).

Quickstart::

    from repro import MorphStreamR, StreamingLedger

    workload = StreamingLedger(1024)
    engine = MorphStreamR(workload, num_workers=8, epoch_len=512)
    engine.process_stream(workload.generate(10_000, seed=1))
    engine.crash()
    report = engine.recover()
    print(report.elapsed_seconds, report.buckets)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for
the paper-figure reproductions under ``benchmarks/``.
"""

from repro.core import (
    AdaptiveCommitController,
    FaultToleranceManager,
    MarkerSchedule,
    MorphStreamR,
    MSROptions,
)
from repro.engine import Event, StateRef, StateStore
from repro.ft import (
    DependencyLogging,
    FTScheme,
    GlobalCheckpoint,
    LSNVector,
    LSNVectorCompressed,
    Native,
    OutputSink,
    RecoveryReport,
    RuntimeReport,
    WALPacman,
    WriteAheadLog,
)
from repro.sim import CostModel, Machine
from repro.workloads import (
    GrepSum,
    OnlineBidding,
    StreamingLedger,
    SyntheticWorkload,
    TollProcessing,
    Workload,
    ZipfianGenerator,
)

__version__ = "1.0.0"

#: Scheme registry used by the harness and benchmarks.
SCHEMES = {
    "NAT": Native,
    "CKPT": GlobalCheckpoint,
    "WAL": WriteAheadLog,
    "PACMAN": WALPacman,
    "DL": DependencyLogging,
    "LV": LSNVector,
    "LVC": LSNVectorCompressed,
    "MSR": MorphStreamR,
}

__all__ = [
    "MorphStreamR",
    "MSROptions",
    "AdaptiveCommitController",
    "FaultToleranceManager",
    "MarkerSchedule",
    "Native",
    "GlobalCheckpoint",
    "WriteAheadLog",
    "WALPacman",
    "DependencyLogging",
    "LSNVector",
    "LSNVectorCompressed",
    "FTScheme",
    "OutputSink",
    "RuntimeReport",
    "RecoveryReport",
    "Event",
    "StateRef",
    "StateStore",
    "CostModel",
    "Machine",
    "Workload",
    "StreamingLedger",
    "GrepSum",
    "TollProcessing",
    "OnlineBidding",
    "SyntheticWorkload",
    "ZipfianGenerator",
    "SCHEMES",
    "__version__",
]
