#!/usr/bin/env python
"""Regenerate every figure's data artifacts under results/.

Runs the full benchmark-scale experiment for each figure and exports
JSON + CSV via :mod:`repro.harness.export`.  EXPERIMENTS.md quotes these
numbers; rerunning this script reproduces them digit-for-digit.

Usage::

    python scripts/regenerate_experiments.py [--quick] [--out results/]
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.cli import FIGURES
from repro.harness import figures
from repro.harness.calibration import all_hold, run_calibration
from repro.harness.export import export_figure, write_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--skip-calibration",
        action="store_true",
        help="skip the final claim battery",
    )
    args = parser.parse_args(argv)
    scale = figures.QUICK_SCALE if args.quick else figures.DEFAULT_SCALE
    out_dir = Path(args.out)

    for name, (fn, description) in sorted(FIGURES.items()):
        started = time.time()
        data = fn(scale)
        written = export_figure(name, scale, data, out_dir)
        print(
            f"{name:7s} {description:45s} "
            f"{time.time() - started:6.1f}s -> {written['json']}"
        )

    if not args.skip_calibration:
        checks = run_calibration(scale)
        write_json(
            out_dir / "calibration.json",
            {
                "all_hold": all_hold(checks),
                "checks": [
                    {
                        "claim": c.claim,
                        "reference": c.reference,
                        "holds": c.holds,
                        "detail": c.detail,
                    }
                    for c in checks
                ],
            },
        )
        verdict = "all hold" if all_hold(checks) else "FAILURES"
        print(f"calibration: {verdict} -> {out_dir / 'calibration.json'}")
        return 0 if all_hold(checks) else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
